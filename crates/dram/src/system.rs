//! The top-level DRAM system: channels + address mapping + completions.

use crate::checker::ProtocolViolation;
use crate::command::TimedCommand;
use crate::config::{DramConfig, Timing};
use crate::controller::ChannelController;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::mapping::AddressMapping;
use crate::stats::DramStats;
use enmc_obs::trace::TraceEvent;

/// Identifier assigned to an accepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// 64-byte read burst.
    Read,
    /// 64-byte write burst.
    Write,
}

/// A memory request for one 64-byte burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Byte address (low 6 bits ignored).
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
}

impl MemRequest {
    /// A read of the burst containing `addr`.
    pub fn read(addr: u64) -> Self {
        MemRequest { addr, kind: RequestKind::Read }
    }

    /// A write of the burst containing `addr`.
    pub fn write(addr: u64) -> Self {
        MemRequest { addr, kind: RequestKind::Write }
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: RequestId,
    /// Cycle at which its data finished on the bus.
    pub finish_cycle: u64,
    /// Cycle at which it entered the controller.
    pub enqueued: u64,
}

impl Completion {
    /// Queueing + service latency in cycles.
    pub fn latency(&self) -> u64 {
        self.finish_cycle - self.enqueued
    }
}

/// A complete multi-channel DRAM subsystem.
///
/// Drive it by interleaving [`DramSystem::enqueue`] and
/// [`DramSystem::tick`]; completed requests become visible through
/// [`DramSystem::drain_completions`] once their data has left the bus.
#[derive(Debug, Clone)]
pub struct DramSystem {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<ChannelController>,
    cycle: u64,
    next_id: u64,
    pending: Vec<Completion>,
    ready: Vec<Completion>,
}

impl DramSystem {
    /// Builds a system with the host-style channel-interleaved mapping.
    pub fn new(config: DramConfig) -> Self {
        Self::with_mapping(config, AddressMapping::RoBaRaCoCh)
    }

    /// Builds a system with an explicit address mapping (the ENMC on-DIMM
    /// controller uses [`AddressMapping::RoRaBaCoBg`]).
    pub fn with_mapping(config: DramConfig, mapping: AddressMapping) -> Self {
        let channels = (0..config.organization.channels)
            .map(|_| ChannelController::new(config))
            .collect();
        DramSystem {
            config,
            mapping,
            channels,
            cycle: 0,
            next_id: 0,
            pending: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Elapsed wall time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.config.timing.cycles_to_ns(self.cycle)
    }

    /// Tries to enqueue `req`; returns its id, or `None` if the target
    /// channel's queue is full (retry after ticking).
    pub fn enqueue(&mut self, req: MemRequest) -> Option<RequestId> {
        let coord = self.mapping.decode(req.addr, &self.config.organization);
        let id = RequestId(self.next_id);
        if self.channels[coord.channel].enqueue(id, req.kind, coord, self.cycle) {
            self.next_id += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Advances the whole subsystem by one memory-clock cycle.
    pub fn tick(&mut self) {
        for ch in &mut self.channels {
            if let Some(c) = ch.tick(self.cycle) {
                self.pending.push(c);
            }
        }
        self.cycle += 1;
        // Promote completions whose data has fully transferred.
        let now = self.cycle;
        let (done, still): (Vec<_>, Vec<_>) =
            self.pending.drain(..).partition(|c| c.finish_cycle <= now);
        self.pending = still;
        self.ready.extend(done);
    }

    /// Removes and returns all completions available so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.ready)
    }

    /// `true` if no requests are queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.channels.iter().all(ChannelController::is_idle)
    }

    /// Runs until idle or `max_cycles` more cycles elapse; returns all
    /// completions observed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion> {
        let deadline = self.cycle + max_cycles;
        let mut out = Vec::new();
        while !self.is_idle() && self.cycle < deadline {
            self.tick();
            out.append(&mut self.ready);
        }
        out.append(&mut self.ready);
        out
    }

    /// [`DramSystem::run_until_idle`] with the channels stepped on
    /// `workers` threads, bit-identical to the sequential drain.
    ///
    /// Channels never interact once their requests are enqueued, so each
    /// controller can run to its own idle point independently; the system
    /// then computes the common final cycle (the straggler channel or the
    /// last in-flight data transfer, whichever is later) and pads every
    /// channel with idle ticks up to it. Those padding ticks are exactly
    /// the ticks the lockstep loop would have issued, so per-channel
    /// statistics, refresh schedules, trace events, cursor position, and
    /// the completion stream all match the sequential path bit for bit —
    /// for any worker count, including one.
    pub fn run_until_idle_par(&mut self, max_cycles: u64, workers: usize) -> Vec<Completion> {
        if workers <= 1 || self.channels.len() < 2 {
            return self.run_until_idle(max_cycles);
        }
        let start = self.cycle;
        let deadline = start.saturating_add(max_cycles);
        let mut out = std::mem::take(&mut self.ready);

        // Phase 1: drain each channel's queue independently, recording the
        // cycle each completion was produced at.
        let channels = std::mem::take(&mut self.channels);
        let drained = enmc_par::par_map(workers, channels, |_, mut ch| {
            let mut produced: Vec<(u64, Completion)> = Vec::new();
            let mut cycle = start;
            while !ch.is_idle() && cycle < deadline {
                if let Some(c) = ch.tick(cycle) {
                    produced.push((cycle, c));
                }
                cycle += 1;
            }
            (ch, produced, cycle)
        });

        // The cycle the lockstep loop would stop at: every queue drained
        // and every completion's data off the bus (or the deadline).
        let mut final_cycle = start;
        for (_, produced, stop) in &drained {
            final_cycle = final_cycle.max(*stop);
            for (_, c) in produced {
                final_cycle = final_cycle.max(c.finish_cycle);
            }
        }
        for c in &self.pending {
            final_cycle = final_cycle.max(c.finish_cycle).max(start + 1);
        }
        let final_cycle = final_cycle.min(deadline);

        // Phase 2: pad every channel to the common final cycle. A drained
        // channel only accrues idle/refresh bookkeeping here, never new
        // completions.
        let padded = enmc_par::par_map(workers, drained, |_, (mut ch, produced, stop)| {
            for cycle in stop..final_cycle {
                let extra = ch.tick(cycle);
                debug_assert!(extra.is_none(), "idle channel produced a completion");
            }
            (ch, produced)
        });

        // Merge the completion streams in the order the lockstep loop
        // promotes them: by promotion cycle, then production order
        // (production cycle, then channel index).
        let mut keyed: Vec<(u64, u64, Completion)> = Vec::new();
        let mut seq = 0u64;
        for c in self.pending.drain(..) {
            keyed.push((c.finish_cycle.max(start + 1), seq, c));
            seq += 1;
        }
        let nch = padded.len() as u64;
        self.channels = Vec::with_capacity(padded.len());
        for (idx, (ch, produced)) in padded.into_iter().enumerate() {
            self.channels.push(ch);
            for (t, c) in produced {
                keyed.push((c.finish_cycle.max(t + 1), seq + (t - start) * nch + idx as u64, c));
            }
        }
        keyed.sort_by_key(|&(promote, order, _)| (promote, order));
        self.cycle = final_cycle;
        let mut leftover: Vec<(u64, Completion)> = Vec::new();
        for (promote, order, c) in keyed {
            if promote <= final_cycle {
                out.push(c);
            } else {
                leftover.push((order, c));
            }
        }
        // Unpromoted completions stay pending in production order, exactly
        // as the lockstep loop leaves them.
        leftover.sort_by_key(|&(order, _)| order);
        self.pending = leftover.into_iter().map(|(_, c)| c).collect();
        out
    }

    /// Aggregated statistics over all channels. Channels tick in lockstep,
    /// so the parallel merge (max of clocks) is the right flavour.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.merge_parallel(ch.stats());
        }
        s
    }

    /// Starts collecting command events on every channel, each into its own
    /// ring of `capacity_per_channel` events stamped with the channel index
    /// as `pid`.
    pub fn enable_trace(&mut self, capacity_per_channel: usize) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.enable_trace(capacity_per_channel, i as u32);
        }
    }

    /// `true` when command events are being collected.
    pub fn trace_enabled(&self) -> bool {
        self.channels.iter().any(ChannelController::trace_enabled)
    }

    /// Removes and returns all collected events, merged across channels in
    /// timestamp order (collection stays on).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for ch in &mut self.channels {
            events.extend(ch.take_trace());
        }
        events.sort_by_key(|e| e.ts);
        events
    }

    /// Attaches a protocol checker to every channel, validating against
    /// the configured timing.
    pub fn enable_protocol_check(&mut self) {
        self.enable_protocol_check_against(self.config.timing);
    }

    /// Attaches a protocol checker validating against `reference` timing
    /// (which may deliberately differ from the configured timing, to
    /// audit a mis-timed controller).
    pub fn enable_protocol_check_against(&mut self, reference: Timing) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.enable_protocol_check(reference, i as u32);
        }
    }

    /// `true` when protocol checking is on.
    pub fn protocol_check_enabled(&self) -> bool {
        self.channels.iter().any(ChannelController::protocol_check_enabled)
    }

    /// Total protocol violations observed across all channels.
    pub fn protocol_violation_count(&self) -> u64 {
        self.channels.iter().map(ChannelController::protocol_violation_count).sum()
    }

    /// Removes and returns the recorded violations across all channels,
    /// ordered by `(cycle, channel)` (checking stays on).
    pub fn take_protocol_violations(&mut self) -> Vec<ProtocolViolation> {
        let mut all: Vec<ProtocolViolation> = Vec::new();
        for ch in &mut self.channels {
            all.extend(ch.take_protocol_violations());
        }
        all.sort_by_key(|v| (v.cycle, v.channel));
        all
    }

    /// Starts logging issued commands on every channel, for golden-model
    /// replay.
    pub fn enable_command_log(&mut self) {
        for ch in &mut self.channels {
            ch.enable_command_log();
        }
    }

    /// Removes and returns each channel's command log (logging stays on).
    pub fn take_command_log(&mut self) -> Vec<Vec<TimedCommand>> {
        self.channels.iter_mut().map(ChannelController::take_command_log).collect()
    }

    /// Per-channel statistics, in channel order.
    pub fn channel_stats(&self) -> Vec<DramStats> {
        self.channels.iter().map(|ch| ch.stats().clone()).collect()
    }

    /// DRAM energy so far under `model`.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.breakdown(&self.stats())
    }

    /// Convenience energy with the default DDR4 model sized to this
    /// subsystem's rank count.
    pub fn energy_default(&self) -> EnergyBreakdown {
        let ranks = self.config.organization.channels * self.config.organization.ranks;
        self.energy(&EnergyModel::ddr4_2400_rank(ranks))
    }

    /// Achieved bandwidth so far in GB/s (decimal).
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        let ns = self.elapsed_ns();
        if ns == 0.0 {
            0.0
        } else {
            self.stats().bytes() as f64 / ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_completes() {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        let id = sys.enqueue(MemRequest::read(4096)).expect("space");
        let done = sys.run_until_idle(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert!(done[0].latency() > 0);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut sys = DramSystem::new(DramConfig::enmc_table3());
        let a = sys.enqueue(MemRequest::read(0)).unwrap();
        let b = sys.enqueue(MemRequest::read(64)).unwrap();
        assert!(b > a);
    }

    #[test]
    fn streaming_achieves_high_bandwidth() {
        // Stream 1 MiB sequentially through a single rank with the ENMC
        // mapping; expect most of the 19.2 GB/s channel peak.
        let mut sys = DramSystem::with_mapping(
            DramConfig::enmc_single_rank(),
            AddressMapping::RoRaBaCoBg,
        );
        let total = (1u64 << 20) / 64;
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < total {
            while sent < total {
                if sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                    sent += 1;
                } else {
                    break;
                }
            }
            sys.tick();
            done += sys.drain_completions().len() as u64;
            assert!(sys.cycle() < 10_000_000, "stalled");
        }
        let gbs = sys.achieved_bandwidth_gbs();
        assert!(gbs > 14.0, "achieved {gbs} GB/s");
    }

    #[test]
    fn multi_channel_scales_bandwidth() {
        let mut sys = DramSystem::new(DramConfig::enmc_table3());
        let total = 8192u64;
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < total {
            while sent < total {
                if sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                    sent += 1;
                } else {
                    break;
                }
            }
            sys.tick();
            done += sys.drain_completions().len() as u64;
            assert!(sys.cycle() < 10_000_000, "stalled");
        }
        let gbs = sys.achieved_bandwidth_gbs();
        // 8 channels: well above a single channel's peak.
        assert!(gbs > 60.0, "achieved {gbs} GB/s");
    }

    #[test]
    fn is_idle_reflects_state() {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        assert!(sys.is_idle());
        sys.enqueue(MemRequest::write(0)).unwrap();
        assert!(!sys.is_idle());
        sys.run_until_idle(100_000);
        assert!(sys.is_idle());
    }

    #[test]
    fn system_trace_merges_channels_in_order() {
        let mut sys = DramSystem::new(DramConfig::enmc_table3());
        sys.enable_trace(4096);
        assert!(sys.trace_enabled());
        for i in 0..64 {
            sys.enqueue(MemRequest::read(i * 64)).unwrap();
        }
        sys.run_until_idle(1_000_000);
        let events = sys.take_trace();
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts), "out of order");
        // Multi-channel config with interleaved addresses: several pids.
        let pids: std::collections::HashSet<u32> = events.iter().map(|e| e.pid).collect();
        assert!(pids.len() > 1, "expected multiple channels, got {pids:?}");
    }

    /// Loads a mixed read/write pattern spread over all channels.
    fn load_mixed(sys: &mut DramSystem, n: u64) {
        for i in 0..n {
            let addr = i * 64 + (i % 7) * 4096;
            let req = if i % 3 == 0 { MemRequest::write(addr) } else { MemRequest::read(addr) };
            if sys.enqueue(req).is_none() {
                sys.tick();
            }
        }
    }

    #[test]
    fn parallel_drain_is_bit_identical_to_sequential() {
        for workers in [2usize, 4, 8] {
            let mut seq = DramSystem::new(DramConfig::enmc_table3());
            load_mixed(&mut seq, 512);
            let mut par = seq.clone();
            let a = seq.run_until_idle(10_000_000);
            let b = par.run_until_idle_par(10_000_000, workers);
            assert_eq!(a, b, "completion streams diverge at {workers} workers");
            assert_eq!(seq.cycle(), par.cycle());
            assert_eq!(seq.stats(), par.stats());
            assert_eq!(seq.pending, par.pending);
        }
    }

    #[test]
    fn parallel_drain_matches_under_deadline_cutoff() {
        // Cut the run short so some data is still in flight: the truncated
        // completion stream and leftover pending set must match too.
        let mut seq = DramSystem::new(DramConfig::enmc_table3());
        load_mixed(&mut seq, 256);
        let mut par = seq.clone();
        let a = seq.run_until_idle(300);
        let b = par.run_until_idle_par(300, 4);
        assert_eq!(a, b);
        assert_eq!(seq.cycle(), par.cycle());
        assert_eq!(seq.pending, par.pending);
        // Resuming both afterwards stays identical.
        let a2 = seq.run_until_idle(10_000_000);
        let b2 = par.run_until_idle_par(10_000_000, 4);
        assert_eq!(a2, b2);
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn parallel_drain_preserves_traces() {
        let mut seq = DramSystem::new(DramConfig::enmc_table3());
        seq.enable_trace(1 << 16);
        load_mixed(&mut seq, 256);
        let mut par = seq.clone();
        seq.run_until_idle(10_000_000);
        par.run_until_idle_par(10_000_000, 4);
        assert_eq!(seq.take_trace(), par.take_trace());
    }

    #[test]
    fn energy_grows_with_traffic() {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        for i in 0..64 {
            sys.enqueue(MemRequest::read(i * 64)).unwrap();
        }
        sys.run_until_idle(1_000_000);
        let e = sys.energy_default();
        assert!(e.access_nj > 0.0);
        assert!(e.static_nj > 0.0);
    }
}
