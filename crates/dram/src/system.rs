//! The top-level DRAM system: channels + address mapping + completions.

use crate::config::DramConfig;
use crate::controller::ChannelController;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::mapping::AddressMapping;
use crate::stats::DramStats;
use enmc_obs::trace::TraceEvent;

/// Identifier assigned to an accepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// 64-byte read burst.
    Read,
    /// 64-byte write burst.
    Write,
}

/// A memory request for one 64-byte burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Byte address (low 6 bits ignored).
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
}

impl MemRequest {
    /// A read of the burst containing `addr`.
    pub fn read(addr: u64) -> Self {
        MemRequest { addr, kind: RequestKind::Read }
    }

    /// A write of the burst containing `addr`.
    pub fn write(addr: u64) -> Self {
        MemRequest { addr, kind: RequestKind::Write }
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: RequestId,
    /// Cycle at which its data finished on the bus.
    pub finish_cycle: u64,
    /// Cycle at which it entered the controller.
    pub enqueued: u64,
}

impl Completion {
    /// Queueing + service latency in cycles.
    pub fn latency(&self) -> u64 {
        self.finish_cycle - self.enqueued
    }
}

/// A complete multi-channel DRAM subsystem.
///
/// Drive it by interleaving [`DramSystem::enqueue`] and
/// [`DramSystem::tick`]; completed requests become visible through
/// [`DramSystem::drain_completions`] once their data has left the bus.
#[derive(Debug, Clone)]
pub struct DramSystem {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<ChannelController>,
    cycle: u64,
    next_id: u64,
    pending: Vec<Completion>,
    ready: Vec<Completion>,
}

impl DramSystem {
    /// Builds a system with the host-style channel-interleaved mapping.
    pub fn new(config: DramConfig) -> Self {
        Self::with_mapping(config, AddressMapping::RoBaRaCoCh)
    }

    /// Builds a system with an explicit address mapping (the ENMC on-DIMM
    /// controller uses [`AddressMapping::RoRaBaCoBg`]).
    pub fn with_mapping(config: DramConfig, mapping: AddressMapping) -> Self {
        let channels = (0..config.organization.channels)
            .map(|_| ChannelController::new(config))
            .collect();
        DramSystem {
            config,
            mapping,
            channels,
            cycle: 0,
            next_id: 0,
            pending: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Elapsed wall time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.config.timing.cycles_to_ns(self.cycle)
    }

    /// Tries to enqueue `req`; returns its id, or `None` if the target
    /// channel's queue is full (retry after ticking).
    pub fn enqueue(&mut self, req: MemRequest) -> Option<RequestId> {
        let coord = self.mapping.decode(req.addr, &self.config.organization);
        let id = RequestId(self.next_id);
        if self.channels[coord.channel].enqueue(id, req.kind, coord, self.cycle) {
            self.next_id += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Advances the whole subsystem by one memory-clock cycle.
    pub fn tick(&mut self) {
        for ch in &mut self.channels {
            if let Some(c) = ch.tick(self.cycle) {
                self.pending.push(c);
            }
        }
        self.cycle += 1;
        // Promote completions whose data has fully transferred.
        let now = self.cycle;
        let (done, still): (Vec<_>, Vec<_>) =
            self.pending.drain(..).partition(|c| c.finish_cycle <= now);
        self.pending = still;
        self.ready.extend(done);
    }

    /// Removes and returns all completions available so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.ready)
    }

    /// `true` if no requests are queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.channels.iter().all(ChannelController::is_idle)
    }

    /// Runs until idle or `max_cycles` more cycles elapse; returns all
    /// completions observed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion> {
        let deadline = self.cycle + max_cycles;
        let mut out = Vec::new();
        while !self.is_idle() && self.cycle < deadline {
            self.tick();
            out.append(&mut self.ready);
        }
        out.append(&mut self.ready);
        out
    }

    /// Aggregated statistics over all channels. Channels tick in lockstep,
    /// so the parallel merge (max of clocks) is the right flavour.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.merge_parallel(ch.stats());
        }
        s
    }

    /// Starts collecting command events on every channel, each into its own
    /// ring of `capacity_per_channel` events stamped with the channel index
    /// as `pid`.
    pub fn enable_trace(&mut self, capacity_per_channel: usize) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.enable_trace(capacity_per_channel, i as u32);
        }
    }

    /// `true` when command events are being collected.
    pub fn trace_enabled(&self) -> bool {
        self.channels.iter().any(ChannelController::trace_enabled)
    }

    /// Removes and returns all collected events, merged across channels in
    /// timestamp order (collection stays on).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for ch in &mut self.channels {
            events.extend(ch.take_trace());
        }
        events.sort_by_key(|e| e.ts);
        events
    }

    /// DRAM energy so far under `model`.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.breakdown(&self.stats())
    }

    /// Convenience energy with the default DDR4 model sized to this
    /// subsystem's rank count.
    pub fn energy_default(&self) -> EnergyBreakdown {
        let ranks = self.config.organization.channels * self.config.organization.ranks;
        self.energy(&EnergyModel::ddr4_2400_rank(ranks))
    }

    /// Achieved bandwidth so far in GB/s (decimal).
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        let ns = self.elapsed_ns();
        if ns == 0.0 {
            0.0
        } else {
            self.stats().bytes() as f64 / ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_completes() {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        let id = sys.enqueue(MemRequest::read(4096)).expect("space");
        let done = sys.run_until_idle(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert!(done[0].latency() > 0);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut sys = DramSystem::new(DramConfig::enmc_table3());
        let a = sys.enqueue(MemRequest::read(0)).unwrap();
        let b = sys.enqueue(MemRequest::read(64)).unwrap();
        assert!(b > a);
    }

    #[test]
    fn streaming_achieves_high_bandwidth() {
        // Stream 1 MiB sequentially through a single rank with the ENMC
        // mapping; expect most of the 19.2 GB/s channel peak.
        let mut sys = DramSystem::with_mapping(
            DramConfig::enmc_single_rank(),
            AddressMapping::RoRaBaCoBg,
        );
        let total = (1u64 << 20) / 64;
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < total {
            while sent < total {
                if sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                    sent += 1;
                } else {
                    break;
                }
            }
            sys.tick();
            done += sys.drain_completions().len() as u64;
            assert!(sys.cycle() < 10_000_000, "stalled");
        }
        let gbs = sys.achieved_bandwidth_gbs();
        assert!(gbs > 14.0, "achieved {gbs} GB/s");
    }

    #[test]
    fn multi_channel_scales_bandwidth() {
        let mut sys = DramSystem::new(DramConfig::enmc_table3());
        let total = 8192u64;
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < total {
            while sent < total {
                if sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                    sent += 1;
                } else {
                    break;
                }
            }
            sys.tick();
            done += sys.drain_completions().len() as u64;
            assert!(sys.cycle() < 10_000_000, "stalled");
        }
        let gbs = sys.achieved_bandwidth_gbs();
        // 8 channels: well above a single channel's peak.
        assert!(gbs > 60.0, "achieved {gbs} GB/s");
    }

    #[test]
    fn is_idle_reflects_state() {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        assert!(sys.is_idle());
        sys.enqueue(MemRequest::write(0)).unwrap();
        assert!(!sys.is_idle());
        sys.run_until_idle(100_000);
        assert!(sys.is_idle());
    }

    #[test]
    fn system_trace_merges_channels_in_order() {
        let mut sys = DramSystem::new(DramConfig::enmc_table3());
        sys.enable_trace(4096);
        assert!(sys.trace_enabled());
        for i in 0..64 {
            sys.enqueue(MemRequest::read(i * 64)).unwrap();
        }
        sys.run_until_idle(1_000_000);
        let events = sys.take_trace();
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts), "out of order");
        // Multi-channel config with interleaved addresses: several pids.
        let pids: std::collections::HashSet<u32> = events.iter().map(|e| e.pid).collect();
        assert!(pids.len() > 1, "expected multiple channels, got {pids:?}");
    }

    #[test]
    fn energy_grows_with_traffic() {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        for i in 0..64 {
            sys.enqueue(MemRequest::read(i * 64)).unwrap();
        }
        sys.run_until_idle(1_000_000);
        let e = sys.energy_default();
        assert!(e.access_nj > 0.0);
        assert!(e.static_nj > 0.0);
    }
}
