//! Runtime DDR4 protocol conformance checker.
//!
//! [`TimingChecker`] shadows every command a channel controller issues and
//! independently re-derives the full DDR4 constraint set from the raw
//! command history — it shares no timing registers with [`crate::bank`] or
//! [`crate::rank`], so a bookkeeping bug in the optimized controller path
//! cannot hide itself from the checker. Each command is checked against:
//!
//! * **bank-state legality** — no double ACT, no column command to a
//!   precharged bank or the wrong row, no REF with a bank open;
//! * **bank timing** — tRCD, tRP, tRC, tRAS, tRTP, write recovery (tWR);
//! * **rank timing** — tRRD_S/L, the tFAW four-activation window,
//!   tCCD_S/L, the write→read (tWTR) and read→write bus turnarounds,
//!   tRFC, and the tREFI refresh-postponement window.
//!
//! Violations become structured [`ProtocolViolation`] records (capped at
//! [`MAX_RECORDED_VIOLATIONS`]; the total count is exact) that the
//! controller forwards into the enmc-obs trace/report pipeline. The
//! checker is off by default and costs one branch per issued command when
//! disabled.

use crate::command::CommandKind;
use crate::config::{Organization, Timing};
use crate::mapping::Coord;
use std::collections::VecDeque;

/// Cap on stored violation records; beyond it only the count grows.
pub const MAX_RECORDED_VIOLATIONS: usize = 4096;

/// DDR4 allows up to eight postponed refreshes, so the gap between
/// consecutive REF commands must stay within `9 × tREFI`.
pub const REFI_POSTPONE_WINDOW: u64 = 9;

/// The specific DDR4 rule a command violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Rule {
    /// ACT to a bank that already has a row open.
    DoubleAct,
    /// Column command to a precharged bank.
    ClosedBank,
    /// Column command to an open bank, but the wrong row.
    WrongRow,
    /// REF while a bank of the rank still has a row open.
    RefOpenBank,
    /// Column command earlier than tRCD after the ACT.
    Trcd,
    /// ACT earlier than tRP after the (explicit or auto) precharge began.
    Trp,
    /// ACT earlier than tRC after the previous ACT to the same bank.
    Trc,
    /// PRE earlier than tRAS after the ACT.
    Tras,
    /// Column command earlier than tCCD_L after one in the same bank group.
    TccdL,
    /// Column command earlier than tCCD_S after one in another bank group.
    TccdS,
    /// ACT earlier than tRRD_L after an ACT in the same bank group.
    TrrdL,
    /// ACT earlier than tRRD_S after an ACT in another bank group.
    TrrdS,
    /// Fifth ACT inside a tFAW four-activation window.
    Tfaw,
    /// Read earlier than CWL + tBL + tWTR after a write.
    Twtr,
    /// Write before the previous read burst cleared the DQ bus.
    RdToWr,
    /// PRE earlier than write recovery (CWL + tBL + tWR) after a write.
    Twr,
    /// PRE earlier than tRTP after a read.
    Trtp,
    /// Command to a rank still inside tRFC after a REF.
    Trfc,
    /// REF later than the 9 × tREFI postponement window allows.
    TrefiWindow,
}

impl Rule {
    /// Every rule, in declaration order (structural rules first).
    pub const ALL: [Rule; 19] = [
        Rule::DoubleAct,
        Rule::ClosedBank,
        Rule::WrongRow,
        Rule::RefOpenBank,
        Rule::Trcd,
        Rule::Trp,
        Rule::Trc,
        Rule::Tras,
        Rule::TccdL,
        Rule::TccdS,
        Rule::TrrdL,
        Rule::TrrdS,
        Rule::Tfaw,
        Rule::Twtr,
        Rule::RdToWr,
        Rule::Twr,
        Rule::Trtp,
        Rule::Trfc,
        Rule::TrefiWindow,
    ];

    /// Stable rule name, also used as the trace-event name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DoubleAct => "ddr4.double_act",
            Rule::ClosedBank => "ddr4.closed_bank",
            Rule::WrongRow => "ddr4.wrong_row",
            Rule::RefOpenBank => "ddr4.ref_open_bank",
            Rule::Trcd => "ddr4.tRCD",
            Rule::Trp => "ddr4.tRP",
            Rule::Trc => "ddr4.tRC",
            Rule::Tras => "ddr4.tRAS",
            Rule::TccdL => "ddr4.tCCD_L",
            Rule::TccdS => "ddr4.tCCD_S",
            Rule::TrrdL => "ddr4.tRRD_L",
            Rule::TrrdS => "ddr4.tRRD_S",
            Rule::Tfaw => "ddr4.tFAW",
            Rule::Twtr => "ddr4.tWTR",
            Rule::RdToWr => "ddr4.rd_to_wr",
            Rule::Twr => "ddr4.tWR",
            Rule::Trtp => "ddr4.tRTP",
            Rule::Trfc => "ddr4.tRFC",
            Rule::TrefiWindow => "ddr4.tREFI_window",
        }
    }

    /// `true` for bank-state legality rules (no timing threshold).
    pub fn is_structural(self) -> bool {
        matches!(
            self,
            Rule::DoubleAct | Rule::ClosedBank | Rule::WrongRow | Rule::RefOpenBank
        )
    }
}

/// One detected protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProtocolViolation {
    /// Cycle the offending command was issued at.
    pub cycle: u64,
    /// Channel the checker shadows.
    pub channel: u32,
    /// Rank the command addressed.
    pub rank: usize,
    /// Bank group the command addressed (the checked bank for PREA/REF).
    pub bank_group: usize,
    /// Bank within the group.
    pub bank: usize,
    /// The offending command.
    pub command: CommandKind,
    /// Which rule it broke.
    pub rule: Rule,
    /// Earliest cycle the rule would have allowed (`u64::MAX` for
    /// structural rules; for [`Rule::TrefiWindow`] the *latest* legal
    /// cycle, since that rule is a deadline, not a minimum gap).
    pub earliest_legal: u64,
}

/// Shadow state of one bank, tracked as raw event times so each rule is
/// evaluated from first principles rather than from merged registers.
#[derive(Debug, Clone, Default)]
struct ShadowBank {
    open_row: Option<usize>,
    /// Cycle of the most recent ACT.
    last_act: Option<u64>,
    /// Cycle the precharge in effect *began* (explicit PRE: issue cycle;
    /// RDA: column + tRTP; WRA: column + CWL + tBL + tWR).
    pre_start: Option<u64>,
    /// Most recent read column command to this bank.
    last_rd: Option<u64>,
    /// Most recent write column command to this bank.
    last_wr: Option<u64>,
}

/// Shadow state of one rank.
#[derive(Debug, Clone)]
struct ShadowRank {
    banks: Vec<ShadowBank>,
    /// Up to the last four ACT cycles (tFAW window).
    acts: VecDeque<u64>,
    /// Last ACT on the rank: (cycle, bank group).
    last_act: Option<(u64, usize)>,
    /// Last column command on the rank: (cycle, bank group, was_write).
    last_col: Option<(u64, usize, bool)>,
    /// Last REF cycle.
    last_ref: Option<u64>,
}

impl ShadowRank {
    fn new(banks: usize) -> Self {
        ShadowRank {
            banks: (0..banks).map(|_| ShadowBank::default()).collect(),
            acts: VecDeque::with_capacity(4),
            last_act: None,
            last_col: None,
            last_ref: None,
        }
    }
}

/// Shadows one channel's command stream and records every DDR4 violation.
#[derive(Debug, Clone)]
pub struct TimingChecker {
    timing: Timing,
    org: Organization,
    channel: u32,
    ranks: Vec<ShadowRank>,
    recorded: Vec<ProtocolViolation>,
    total: u64,
}

impl TimingChecker {
    /// A checker validating against `reference` timing. Pass the
    /// controller's own configured timing for self-checking, or a known
    /// good reference to hunt for mis-configured (e.g. fuzzer-injected)
    /// constraint values.
    pub fn new(reference: Timing, org: Organization, channel: u32) -> Self {
        TimingChecker {
            timing: reference,
            org,
            channel,
            ranks: (0..org.ranks).map(|_| ShadowRank::new(org.banks_per_rank())).collect(),
            recorded: Vec::new(),
            total: 0,
        }
    }

    /// The reference timing being enforced.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Exact number of violations observed so far (recorded or not).
    pub fn violation_count(&self) -> u64 {
        self.total
    }

    /// The recorded violations (at most [`MAX_RECORDED_VIOLATIONS`]).
    pub fn violations(&self) -> &[ProtocolViolation] {
        &self.recorded
    }

    /// Violations dropped once the record cap was reached.
    pub fn dropped(&self) -> u64 {
        self.total - self.recorded.len() as u64
    }

    /// Removes and returns the recorded violations; counting continues.
    pub fn take_violations(&mut self) -> Vec<ProtocolViolation> {
        std::mem::take(&mut self.recorded)
    }

    /// Observes one issued command, returning the violations it triggered
    /// (empty in the common, conforming case — no allocation then).
    ///
    /// Shadow state is updated unconditionally, mirroring what the DRAM
    /// device would actually do, so a single early command does not
    /// cascade into spurious reports for every later one.
    pub fn observe(&mut self, now: u64, kind: CommandKind, coord: &Coord) -> Vec<ProtocolViolation> {
        let mut fresh = Vec::new();
        match kind {
            CommandKind::Act => self.observe_act(now, coord, &mut fresh),
            CommandKind::Pre => self.observe_pre(now, kind, coord.rank, self.flat(coord), &mut fresh),
            CommandKind::PreA => {
                // PREA is one command but precharges every open bank; check
                // and close each, attributing violations to that bank.
                for flat in 0..self.org.banks_per_rank() {
                    if self.ranks[coord.rank].banks[flat].open_row.is_some() {
                        self.observe_pre(now, kind, coord.rank, flat, &mut fresh);
                    }
                }
            }
            CommandKind::Rd | CommandKind::Wr | CommandKind::Rda | CommandKind::Wra => {
                self.observe_column(now, kind, coord, &mut fresh)
            }
            CommandKind::Ref => self.observe_ref(now, coord.rank, &mut fresh),
        }
        self.total += fresh.len() as u64;
        let room = MAX_RECORDED_VIOLATIONS.saturating_sub(self.recorded.len());
        self.recorded.extend(fresh.iter().take(room).copied());
        fresh
    }

    fn flat(&self, coord: &Coord) -> usize {
        coord.flat_bank(&self.org)
    }

    fn record(
        fresh: &mut Vec<ProtocolViolation>,
        channel: u32,
        org: &Organization,
        now: u64,
        kind: CommandKind,
        rank: usize,
        flat: usize,
        rule: Rule,
        earliest: u64,
    ) {
        fresh.push(ProtocolViolation {
            cycle: now,
            channel,
            rank,
            bank_group: flat / org.banks_per_group,
            bank: flat % org.banks_per_group,
            command: kind,
            rule,
            earliest_legal: earliest,
        });
    }

    /// tRFC: no command may address a rank still refreshing.
    fn check_trfc(&self, now: u64, rank: usize) -> Option<u64> {
        let end = self.ranks[rank].last_ref? + self.timing.trfc;
        (now < end).then_some(end)
    }

    fn observe_act(&mut self, now: u64, coord: &Coord, fresh: &mut Vec<ProtocolViolation>) {
        let t = self.timing;
        let flat = self.flat(coord);
        let kind = CommandKind::Act;
        let (channel, org) = (self.channel, self.org);
        {
            let r = &self.ranks[coord.rank];
            let b = &r.banks[flat];
            let mut v = |rule, earliest| {
                Self::record(fresh, channel, &org, now, kind, coord.rank, flat, rule, earliest)
            };
            if b.open_row.is_some() {
                v(Rule::DoubleAct, u64::MAX);
            }
            if let Some(p) = b.pre_start {
                if now < p + t.trp {
                    v(Rule::Trp, p + t.trp);
                }
            }
            if let Some(a) = b.last_act {
                if now < a + t.trc {
                    v(Rule::Trc, a + t.trc);
                }
            }
            if let Some((a, bg)) = r.last_act {
                let (trrd, rule) = if bg == coord.bank_group {
                    (t.trrd_l, Rule::TrrdL)
                } else {
                    (t.trrd_s, Rule::TrrdS)
                };
                if now < a + trrd {
                    v(rule, a + trrd);
                }
            }
            if r.acts.len() == 4 && now < r.acts[0] + t.tfaw {
                v(Rule::Tfaw, r.acts[0] + t.tfaw);
            }
        }
        if let Some(end) = self.check_trfc(now, coord.rank) {
            Self::record(fresh, channel, &org, now, kind, coord.rank, flat, Rule::Trfc, end);
        }
        // Apply.
        let r = &mut self.ranks[coord.rank];
        let b = &mut r.banks[flat];
        b.open_row = Some(coord.row);
        b.last_act = Some(now);
        if r.acts.len() == 4 {
            r.acts.pop_front();
        }
        r.acts.push_back(now);
        r.last_act = Some((now, coord.bank_group));
    }

    /// One bank's share of a PRE or PREA. A PRE to an already-closed bank
    /// is a legal NOP and never reaches here via PREA; via explicit PRE it
    /// is simply ignored (state unchanged, nothing to check).
    fn observe_pre(
        &mut self,
        now: u64,
        kind: CommandKind,
        rank: usize,
        flat: usize,
        fresh: &mut Vec<ProtocolViolation>,
    ) {
        let t = self.timing;
        let (channel, org) = (self.channel, self.org);
        let b = &self.ranks[rank].banks[flat];
        if b.open_row.is_none() {
            return;
        }
        let mut v =
            |rule, earliest| Self::record(fresh, channel, &org, now, kind, rank, flat, rule, earliest);
        if let Some(a) = b.last_act {
            if now < a + t.tras {
                v(Rule::Tras, a + t.tras);
            }
        }
        if let Some(rd) = b.last_rd {
            if now < rd + t.trtp {
                v(Rule::Trtp, rd + t.trtp);
            }
        }
        if let Some(wr) = b.last_wr {
            let recovery = wr + t.cwl + t.tbl + t.twr;
            if now < recovery {
                v(Rule::Twr, recovery);
            }
        }
        // Apply: the bank closes, write/read recovery is consumed.
        let b = &mut self.ranks[rank].banks[flat];
        b.open_row = None;
        b.pre_start = Some(now);
        b.last_rd = None;
        b.last_wr = None;
    }

    fn observe_column(
        &mut self,
        now: u64,
        kind: CommandKind,
        coord: &Coord,
        fresh: &mut Vec<ProtocolViolation>,
    ) {
        let t = self.timing;
        let flat = self.flat(coord);
        let (channel, org) = (self.channel, self.org);
        {
            let r = &self.ranks[coord.rank];
            let b = &r.banks[flat];
            let mut v = |rule, earliest| {
                Self::record(fresh, channel, &org, now, kind, coord.rank, flat, rule, earliest)
            };
            match b.open_row {
                None => v(Rule::ClosedBank, u64::MAX),
                Some(row) if row != coord.row => v(Rule::WrongRow, u64::MAX),
                Some(_) => {}
            }
            if let Some(a) = b.last_act {
                if now < a + t.trcd {
                    v(Rule::Trcd, a + t.trcd);
                }
            }
            if let Some((c, bg, was_write)) = r.last_col {
                let (tccd, rule) = if bg == coord.bank_group {
                    (t.tccd_l, Rule::TccdL)
                } else {
                    (t.tccd_s, Rule::TccdS)
                };
                if now < c + tccd {
                    v(rule, c + tccd);
                }
                if was_write && kind.is_read() {
                    let turn = c + t.cwl + t.tbl + t.twtr;
                    if now < turn {
                        v(Rule::Twtr, turn);
                    }
                } else if !was_write && kind.is_write() {
                    let turn = c + t.cl + t.tbl + 2 - t.cwl;
                    if now < turn {
                        v(Rule::RdToWr, turn);
                    }
                }
            }
        }
        if let Some(end) = self.check_trfc(now, coord.rank) {
            Self::record(fresh, channel, &org, now, kind, coord.rank, flat, Rule::Trfc, end);
        }
        // Apply.
        let r = &mut self.ranks[coord.rank];
        {
            let b = &mut r.banks[flat];
            if kind.is_read() {
                b.last_rd = Some(now);
            } else {
                b.last_wr = Some(now);
            }
            if kind.auto_precharge() {
                b.open_row = None;
                b.pre_start = Some(if kind.is_read() {
                    now + t.trtp
                } else {
                    now + t.cwl + t.tbl + t.twr
                });
                b.last_rd = None;
                b.last_wr = None;
            }
        }
        r.last_col = Some((now, coord.bank_group, kind.is_write()));
    }

    fn observe_ref(&mut self, now: u64, rank: usize, fresh: &mut Vec<ProtocolViolation>) {
        let t = self.timing;
        let kind = CommandKind::Ref;
        let (channel, org) = (self.channel, self.org);
        {
            let r = &self.ranks[rank];
            for (flat, b) in r.banks.iter().enumerate() {
                let mut v = |rule, earliest| {
                    Self::record(fresh, channel, &org, now, kind, rank, flat, rule, earliest)
                };
                if b.open_row.is_some() {
                    v(Rule::RefOpenBank, u64::MAX);
                }
                if let Some(p) = b.pre_start {
                    if now < p + t.trp {
                        v(Rule::Trp, p + t.trp);
                    }
                }
                if let Some(a) = b.last_act {
                    if now < a + t.trc {
                        v(Rule::Trc, a + t.trc);
                    }
                }
            }
        }
        if let Some(end) = self.check_trfc(now, rank) {
            Self::record(fresh, channel, &org, now, kind, rank, 0, Rule::Trfc, end);
        }
        // Refresh postponement deadline: DDR4 tolerates at most eight
        // postponed refreshes, i.e. REF-to-REF gaps within 9 × tREFI.
        let anchor = self.ranks[rank].last_ref.unwrap_or(0);
        let deadline = anchor + REFI_POSTPONE_WINDOW * t.trefi;
        if now > deadline {
            Self::record(fresh, channel, &org, now, kind, rank, 0, Rule::TrefiWindow, deadline);
        }
        self.ranks[rank].last_ref = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn checker() -> (TimingChecker, Timing) {
        let cfg = DramConfig::enmc_table3();
        (TimingChecker::new(cfg.timing, cfg.organization, 0), cfg.timing)
    }

    fn coord(bg: usize, bank: usize, row: usize, col: usize) -> Coord {
        Coord { channel: 0, rank: 0, bank_group: bg, bank, row, column: col }
    }

    #[test]
    fn conforming_open_page_sequence_is_clean() {
        let (mut ck, t) = checker();
        let c = coord(0, 0, 7, 0);
        assert!(ck.observe(0, CommandKind::Act, &c).is_empty());
        assert!(ck.observe(t.trcd, CommandKind::Rd, &c).is_empty());
        assert!(ck.observe(t.trcd + t.tccd_l, CommandKind::Rd, &c).is_empty());
        let pre = (t.trcd + t.tccd_l + t.trtp).max(t.tras);
        assert!(ck.observe(pre, CommandKind::Pre, &c).is_empty());
        assert!(ck.observe(pre + t.trp, CommandKind::Act, &coord(0, 0, 8, 0)).is_empty());
        assert_eq!(ck.violation_count(), 0);
    }

    #[test]
    fn early_read_flags_trcd_once() {
        let (mut ck, t) = checker();
        let c = coord(1, 2, 3, 0);
        ck.observe(0, CommandKind::Act, &c);
        let vs = ck.observe(t.trcd - 1, CommandKind::Rd, &c);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::Trcd);
        assert_eq!(vs[0].earliest_legal, t.trcd);
        assert_eq!(vs[0].command, CommandKind::Rd);
        assert_eq!((vs[0].bank_group, vs[0].bank), (1, 2));
        // The shadow state still applied the command: the next read at a
        // legal spacing is clean.
        assert!(ck.observe(t.trcd - 1 + t.tccd_l, CommandKind::Rd, &c).is_empty());
        assert_eq!(ck.violation_count(), 1);
    }

    #[test]
    fn structural_rules_have_no_threshold() {
        let (mut ck, _t) = checker();
        let c = coord(0, 0, 1, 0);
        let vs = ck.observe(0, CommandKind::Rd, &c);
        assert_eq!(vs[0].rule, Rule::ClosedBank);
        assert_eq!(vs[0].earliest_legal, u64::MAX);
        assert!(vs[0].rule.is_structural());
    }

    #[test]
    fn prea_checks_every_open_bank() {
        let (mut ck, t) = checker();
        ck.observe(0, CommandKind::Act, &coord(0, 0, 1, 0));
        ck.observe(t.trrd_s, CommandKind::Act, &coord(1, 0, 2, 0));
        // PREA well before either bank's tRAS: two violations, one per bank.
        let vs = ck.observe(t.trrd_s + 1, CommandKind::PreA, &coord(0, 0, 0, 0));
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.rule == Rule::Tras));
        assert_eq!(vs[0].bank_group, 0);
        assert_eq!(vs[1].bank_group, 1);
    }

    #[test]
    fn record_cap_keeps_exact_total() {
        let (mut ck, _t) = checker();
        let c = coord(0, 0, 1, 0);
        for i in 0..(MAX_RECORDED_VIOLATIONS as u64 + 10) {
            // Every observe: RD to a closed bank (structural, non-cascading).
            let vs = ck.observe(i * 100, CommandKind::Rd, &c);
            assert_eq!(vs.len(), 1);
        }
        assert_eq!(ck.violations().len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(ck.violation_count(), MAX_RECORDED_VIOLATIONS as u64 + 10);
        assert_eq!(ck.dropped(), 10);
    }

    #[test]
    fn rule_names_are_distinct() {
        let names: std::collections::HashSet<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), Rule::ALL.len());
    }
}
