//! Per-bank state machine and timing registers.
//!
//! Each bank tracks whether a row is open in its row buffer and the
//! earliest cycle at which each command class may legally be issued to it.
//! Constraints that span banks (tRRD, tFAW, tCCD, bus occupancy, tWTR)
//! live in [`crate::rank::RankState`].

use crate::command::CommandKind;
use crate::config::Timing;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// No row open; bank is precharged.
    Closed,
    /// `row` is latched in the row buffer.
    Open(usize),
}

/// One DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    state: RowState,
    /// Earliest cycle an ACT may issue.
    next_act: u64,
    /// Earliest cycle a PRE may issue.
    next_pre: u64,
    /// Earliest cycle a RD may issue.
    next_rd: u64,
    /// Earliest cycle a WR may issue.
    next_wr: u64,
    /// Row hits/misses bookkeeping.
    opened_row_accesses: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A freshly precharged bank.
    pub fn new() -> Self {
        Bank {
            state: RowState::Closed,
            next_act: 0,
            next_pre: 0,
            next_rd: 0,
            next_wr: 0,
            opened_row_accesses: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> RowState {
        self.state
    }

    /// Number of column accesses served by the currently open row.
    pub fn open_row_accesses(&self) -> u64 {
        self.opened_row_accesses
    }

    /// `true` if `row` is open in the buffer.
    pub fn is_open(&self, row: usize) -> bool {
        self.state == RowState::Open(row)
    }

    /// Earliest legal issue cycle for `kind` at this bank (bank-local
    /// constraints only).
    pub fn earliest(&self, kind: CommandKind) -> u64 {
        match kind {
            CommandKind::Act => self.next_act,
            CommandKind::Pre | CommandKind::PreA => self.next_pre,
            CommandKind::Rd | CommandKind::Rda => self.next_rd,
            CommandKind::Wr | CommandKind::Wra => self.next_wr,
            CommandKind::Ref => self.next_act, // REF needs the bank idle
        }
    }

    /// `true` if `kind` targeting `row` is legal *structurally* (ignores
    /// timing): ACT needs a closed bank, column commands need the row open.
    pub fn permits(&self, kind: CommandKind, row: usize) -> bool {
        match kind {
            CommandKind::Act => self.state == RowState::Closed,
            CommandKind::Pre | CommandKind::PreA => true,
            CommandKind::Rd | CommandKind::Rda | CommandKind::Wr | CommandKind::Wra => {
                self.is_open(row)
            }
            CommandKind::Ref => self.state == RowState::Closed,
        }
    }

    /// Applies `kind` at cycle `now`, updating state and bank-local timing
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the command is structurally illegal or
    /// violates a bank-local timing constraint — the controller must only
    /// issue legal commands.
    pub fn issue(&mut self, kind: CommandKind, row: usize, now: u64, t: &Timing) {
        debug_assert!(self.permits(kind, row), "illegal {kind:?} in state {:?}", self.state);
        debug_assert!(now >= self.earliest(kind), "{kind:?} too early: {now} < {}", self.earliest(kind));
        match kind {
            CommandKind::Act => {
                self.state = RowState::Open(row);
                self.opened_row_accesses = 0;
                self.next_act = now + t.trc;
                self.next_pre = now + t.tras;
                self.next_rd = now + t.trcd;
                self.next_wr = now + t.trcd;
            }
            CommandKind::Pre | CommandKind::PreA => {
                self.state = RowState::Closed;
                self.next_act = self.next_act.max(now + t.trp);
            }
            CommandKind::Rd | CommandKind::Rda => {
                self.opened_row_accesses += 1;
                // Read-to-precharge.
                self.next_pre = self.next_pre.max(now + t.trtp);
                if kind == CommandKind::Rda {
                    self.state = RowState::Closed;
                    self.next_act = self.next_act.max(now + t.trtp + t.trp);
                }
            }
            CommandKind::Wr | CommandKind::Wra => {
                self.opened_row_accesses += 1;
                // Write recovery before precharge.
                self.next_pre = self.next_pre.max(now + t.cwl + t.tbl + t.twr);
                if kind == CommandKind::Wra {
                    self.state = RowState::Closed;
                    self.next_act = self.next_act.max(now + t.cwl + t.tbl + t.twr + t.trp);
                }
            }
            CommandKind::Ref => {
                self.next_act = self.next_act.max(now + t.trfc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::ddr4_2400_table3()
    }

    #[test]
    fn starts_closed_and_ready() {
        let b = Bank::new();
        assert_eq!(b.state(), RowState::Closed);
        assert_eq!(b.earliest(CommandKind::Act), 0);
        assert!(b.permits(CommandKind::Act, 5));
        assert!(!b.permits(CommandKind::Rd, 5));
    }

    #[test]
    fn act_opens_row_and_sets_trcd() {
        let t = t();
        let mut b = Bank::new();
        b.issue(CommandKind::Act, 7, 10, &t);
        assert!(b.is_open(7));
        assert!(!b.is_open(8));
        assert_eq!(b.earliest(CommandKind::Rd), 10 + t.trcd);
        assert_eq!(b.earliest(CommandKind::Act), 10 + t.trc);
        assert_eq!(b.earliest(CommandKind::Pre), 10 + t.tras);
    }

    #[test]
    fn pre_closes_and_enforces_trp() {
        let t = t();
        let mut b = Bank::new();
        b.issue(CommandKind::Act, 3, 0, &t);
        let pre_at = t.tras;
        b.issue(CommandKind::Pre, 3, pre_at, &t);
        assert_eq!(b.state(), RowState::Closed);
        // tRC from the ACT dominates tRP from the PRE here (tRAS+tRP = tRC).
        assert_eq!(b.earliest(CommandKind::Act), t.trc);
    }

    #[test]
    fn rda_auto_precharges() {
        let t = t();
        let mut b = Bank::new();
        b.issue(CommandKind::Act, 1, 0, &t);
        b.issue(CommandKind::Rda, 1, t.trcd, &t);
        assert_eq!(b.state(), RowState::Closed);
        assert!(b.earliest(CommandKind::Act) >= t.trcd + t.trtp + t.trp);
    }

    #[test]
    fn write_delays_precharge_by_recovery() {
        let t = t();
        let mut b = Bank::new();
        b.issue(CommandKind::Act, 1, 0, &t);
        b.issue(CommandKind::Wr, 1, t.trcd, &t);
        assert!(b.earliest(CommandKind::Pre) >= t.trcd + t.cwl + t.tbl + t.twr);
    }

    #[test]
    fn row_access_counter_resets_on_act() {
        let t = t();
        let mut b = Bank::new();
        b.issue(CommandKind::Act, 1, 0, &t);
        b.issue(CommandKind::Rd, 1, t.trcd, &t);
        b.issue(CommandKind::Rd, 1, t.trcd + t.tccd_s, &t);
        assert_eq!(b.open_row_accesses(), 2);
        // Precharge as soon as tRAS allows; the next ACT is gated by tRC.
        b.issue(CommandKind::Pre, 1, t.tras, &t);
        b.issue(CommandKind::Act, 2, t.trc, &t);
        assert_eq!(b.open_row_accesses(), 0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn illegal_read_on_closed_bank_panics() {
        let t = t();
        let mut b = Bank::new();
        b.issue(CommandKind::Rd, 0, 0, &t);
    }
}
