//! Golden reference model: a deliberately simple, obviously-correct DDR4
//! timing oracle for cross-validating the optimized open-page controller.
//!
//! Two independent cross-checks live here:
//!
//! 1. **Command-stream replay** ([`replay_commands`] / [`audit_channel`]):
//!    re-derives every command's earliest legal issue cycle from the raw
//!    command history with a pure *pairwise* constraint function — no
//!    next-cycle registers, no merged state, just "command `j` before
//!    command `i` implies a gap of at least X". It also tracks bank-state
//!    transitions structurally and recomputes the [`DramStats`] counters
//!    the command stream implies, so a controller whose bookkeeping and
//!    behaviour disagree is caught even when every cycle is legal.
//! 2. **Closed-page serial schedule** ([`golden_closed_page`]): an
//!    alternative execution of the same *request* stream that issues
//!    strictly one request at a time (ACT → RDA/WRA → full recovery) and
//!    refreshes eagerly. It is trivially correct by construction and gives
//!    a completion set that must match the controller's and a cycle count
//!    the pipelined controller must beat (see `DESIGN.md` for the
//!    abstraction gap between the two models).

use crate::command::{Command, CommandKind, TimedCommand};
use crate::config::DramConfig;
use crate::mapping::Coord;
use crate::stats::DramStats;
use crate::system::RequestKind;

/// Counter view a command stream implies, for comparison with the
/// controller's own [`DramStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounts {
    /// Column reads (RD + RDA).
    pub reads: u64,
    /// Column writes (WR + WRA).
    pub writes: u64,
    /// ACT commands.
    pub activations: u64,
    /// Precharge commands as the controller counts them: PRE + PREA +
    /// auto-precharging columns (a PREA counts once however many banks it
    /// closes).
    pub precharges: u64,
    /// REF commands.
    pub refreshes: u64,
    /// DQ-bus busy cycles: tBL per column command.
    pub busy_cycles: u64,
}

/// Result of replaying one channel's command log.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Human-readable divergence descriptions (empty = conforming).
    pub divergences: Vec<String>,
    /// The counters the stream implies.
    pub counts: ReplayCounts,
}

/// A flattened, per-bank command event (PREA expands to one per open bank).
#[derive(Debug, Clone, Copy)]
struct Ev {
    cycle: u64,
    kind: CommandKind,
    rank: usize,
    bg: usize,
    flat: usize,
}

/// The minimum gap the DDR4 protocol requires between `prev` and `next`
/// on the same rank, as an absolute earliest cycle for `next` (0 = no
/// constraint between this pair). REF events carry `flat = usize::MAX`
/// and constrain (and are constrained by) every bank of the rank.
fn pairwise_earliest(prev: &Ev, next: &Ev, cfg: &DramConfig) -> u64 {
    let t = &cfg.timing;
    if prev.rank != next.rank {
        return 0; // ranks are independent timing domains in this model
    }
    let same_bank = prev.flat == next.flat && prev.flat != usize::MAX;
    let p = prev.cycle;
    use CommandKind::*;
    match (prev.kind, next.kind) {
        // --- after a REF: the whole rank is busy for tRFC ---------------
        (Ref, _) => p + t.trfc,
        // --- ACT → ... ---------------------------------------------------
        (Act, Act) if same_bank => p + t.trc,
        (Act, Act) if prev.bg == next.bg => p + t.trrd_l,
        (Act, Act) => p + t.trrd_s,
        (Act, Rd | Wr | Rda | Wra) if same_bank => p + t.trcd,
        (Act, Pre) if same_bank => p + t.tras,
        (Act, Ref) => p + t.trc, // bank must cycle closed: tRAS + tRP
        // --- PRE → ... ---------------------------------------------------
        (Pre, Act) if same_bank => p + t.trp,
        (Pre, Ref) => p + t.trp,
        // --- column → column: bus + bank-group spacing -------------------
        (Rd | Wr | Rda | Wra, Rd | Wr | Rda | Wra) => {
            let mut e = if prev.bg == next.bg { p + t.tccd_l } else { p + t.tccd_s };
            if prev.kind.is_write() && next.kind.is_read() {
                e = e.max(p + t.cwl + t.tbl + t.twtr);
            } else if prev.kind.is_read() && next.kind.is_write() {
                e = e.max(p + t.cl + t.tbl + 2 - t.cwl);
            }
            e
        }
        // --- column → PRE / ACT / REF on the same bank -------------------
        (Rd, Pre) if same_bank => p + t.trtp,
        (Wr, Pre) if same_bank => p + t.cwl + t.tbl + t.twr,
        (Rda, Act | Ref) if same_bank || next.kind == Ref => p + t.trtp + t.trp,
        (Wra, Act | Ref) if same_bank || next.kind == Ref => p + t.cwl + t.tbl + t.twr + t.trp,
        _ => 0,
    }
}

/// Replays one channel's command log against the pairwise constraint
/// oracle: structural bank-state tracking, per-command earliest-issue
/// validation, tFAW window scan, and counter recomputation.
pub fn replay_commands(log: &[TimedCommand], cfg: &DramConfig) -> ReplayReport {
    let org = &cfg.organization;
    let t = &cfg.timing;
    let mut report = ReplayReport::default();
    let mut open: Vec<Vec<Option<usize>>> =
        vec![vec![None; org.banks_per_rank()]; org.ranks];

    // Pass 1: structural expansion. PREA becomes one Pre event per bank it
    // actually closes; bank-state transitions are validated on the way.
    let mut events: Vec<Ev> = Vec::with_capacity(log.len());
    for tc in log {
        let Command { kind, coord } = tc.command;
        let cycle = tc.cycle;
        let flat = coord.flat_bank(org);
        let rank_open = &mut open[coord.rank];
        let ev = Ev {
            cycle,
            kind,
            rank: coord.rank,
            bg: coord.bank_group,
            flat,
        };
        match kind {
            CommandKind::Act => {
                if rank_open[flat].is_some() {
                    report
                        .divergences
                        .push(format!("cycle {cycle}: ACT to open bank {flat} (rank {})", coord.rank));
                }
                rank_open[flat] = Some(coord.row);
                report.counts.activations += 1;
                events.push(ev);
            }
            CommandKind::Pre => {
                rank_open[flat] = None;
                report.counts.precharges += 1;
                events.push(ev);
            }
            CommandKind::PreA => {
                report.counts.precharges += 1;
                for f in 0..rank_open.len() {
                    if rank_open[f].take().is_some() {
                        events.push(Ev {
                            cycle,
                            kind: CommandKind::Pre,
                            rank: coord.rank,
                            bg: f / org.banks_per_group,
                            flat: f,
                        });
                    }
                }
            }
            CommandKind::Rd | CommandKind::Wr | CommandKind::Rda | CommandKind::Wra => {
                match rank_open[flat] {
                    Some(row) if row == coord.row => {}
                    Some(row) => report.divergences.push(format!(
                        "cycle {cycle}: {} to bank {flat} row {} while row {row} is open",
                        kind.name(),
                        coord.row
                    )),
                    None => report.divergences.push(format!(
                        "cycle {cycle}: {} to precharged bank {flat}",
                        kind.name()
                    )),
                }
                if kind.is_read() {
                    report.counts.reads += 1;
                } else {
                    report.counts.writes += 1;
                }
                report.counts.busy_cycles += t.tbl;
                if kind.auto_precharge() {
                    rank_open[flat] = None;
                    report.counts.precharges += 1;
                }
                events.push(ev);
            }
            CommandKind::Ref => {
                for (f, row) in rank_open.iter().enumerate() {
                    if row.is_some() {
                        report
                            .divergences
                            .push(format!("cycle {cycle}: REF with bank {f} open"));
                    }
                }
                report.counts.refreshes += 1;
                events.push(Ev {
                    cycle,
                    kind,
                    rank: coord.rank,
                    bg: usize::MAX,
                    flat: usize::MAX,
                });
            }
        }
    }

    // Pass 2: timing validation. Only events within `horizon` cycles can
    // still constrain the current one (the largest chain is tRFC), which
    // keeps the backward scan O(n · horizon-population) instead of O(n²).
    let horizon = t.trfc + t.trc + t.tfaw + t.tbl + t.cl + t.cwl + t.twr;
    for i in 0..events.len() {
        let cur = events[i];
        let mut earliest = 0u64;
        let mut binding: Option<&Ev> = None;
        let mut recent_acts = 0usize;
        for prev in events[..i].iter().rev() {
            if cur.cycle.saturating_sub(prev.cycle) > horizon {
                break;
            }
            let mut e = pairwise_earliest(prev, &cur, cfg);
            // tFAW: the fifth activation on a rank must clear the window
            // opened by the fourth-most-recent one.
            if cur.kind == CommandKind::Act && prev.kind == CommandKind::Act && prev.rank == cur.rank
            {
                recent_acts += 1;
                if recent_acts == 4 {
                    e = e.max(prev.cycle + t.tfaw);
                }
            }
            if e > earliest {
                earliest = e;
                binding = Some(prev);
            }
        }
        if cur.cycle < earliest {
            let b = binding.expect("a binding constraint exists when violated");
            report.divergences.push(format!(
                "cycle {}: {} (rank {}, bank {}) {} cycles early ({} at cycle {} requires >= {})",
                cur.cycle,
                cur.kind.name(),
                cur.rank,
                if cur.flat == usize::MAX { 0 } else { cur.flat },
                earliest - cur.cycle,
                b.kind.name(),
                b.cycle,
                earliest,
            ));
        }
    }
    report
}

/// Replays `log` and cross-checks the implied counters against the
/// controller's `stats` for the same channel. Returns every divergence
/// found (empty = the controller conforms and its books balance).
pub fn audit_channel(log: &[TimedCommand], stats: &DramStats, cfg: &DramConfig) -> Vec<String> {
    let mut rep = replay_commands(log, cfg);
    let c = rep.counts;
    let mut check = |name: &str, golden: u64, controller: u64| {
        if golden != controller {
            rep.divergences
                .push(format!("stats.{name}: command stream implies {golden}, controller counted {controller}"));
        }
    };
    check("reads", c.reads, stats.reads);
    check("writes", c.writes, stats.writes);
    check("activations", c.activations, stats.activations);
    check("precharges", c.precharges, stats.precharges);
    check("refreshes", c.refreshes, stats.refreshes);
    check("busy_cycles", c.busy_cycles, stats.busy_cycles);
    // Classification conservation: every request is classified exactly once.
    let classified = stats.row_hits + stats.row_misses + stats.row_conflicts;
    check("classified_requests", c.reads + c.writes, classified);
    rep.divergences
}

/// One request as the golden scheduler sees it.
#[derive(Debug, Clone, Copy)]
pub struct GoldenRequest {
    /// The request id (for completion-set comparison).
    pub id: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Decoded coordinates.
    pub coord: Coord,
    /// Cycle the request becomes visible.
    pub arrival: u64,
}

/// What the closed-page serial schedule produced.
#[derive(Debug, Clone, Default)]
pub struct GoldenOutcome {
    /// `(id, data-finish cycle)` per request, in service order.
    pub completions: Vec<(u64, u64)>,
    /// Every command issued, in order — feed it back through
    /// [`crate::checker::TimingChecker`] to self-check the golden model.
    pub commands: Vec<TimedCommand>,
    /// Cycle the last data burst left the bus.
    pub finish_cycle: u64,
    /// REF commands issued.
    pub refreshes: u64,
}

/// Schedules `requests` (one channel, arrival order) with the simplest
/// correct policy: one request at a time, ACT → RDA/WRA with every
/// recovery window fully elapsed before the next request starts, and an
/// eager REF per rank whenever a tREFI boundary has passed. Nothing
/// overlaps, so each step's legality is immediate from the constraint
/// definitions.
pub fn golden_closed_page(requests: &[GoldenRequest], cfg: &DramConfig) -> GoldenOutcome {
    let t = cfg.timing;
    let org = cfg.organization;
    let mut out = GoldenOutcome::default();
    // Earliest next ACT per (rank, bank) from tRC and auto-precharge.
    let mut bank_ready = vec![vec![0u64; org.banks_per_rank()]; org.ranks];
    let mut next_refresh = vec![t.trefi; org.ranks];
    // The serial cursor: no command issues before it, and it only moves
    // forward past each request's full recovery.
    let mut cursor = 0u64;
    for req in requests {
        let rank = req.coord.rank;
        let flat = req.coord.flat_bank(&org);
        let mut now = cursor.max(req.arrival);
        // Eager refresh: between requests every bank is precharged and
        // recovered, so a due REF can issue immediately.
        while now >= next_refresh[rank] {
            out.commands.push(TimedCommand {
                cycle: now,
                command: Command::new(
                    CommandKind::Ref,
                    Coord { channel: req.coord.channel, rank, bank_group: 0, bank: 0, row: 0, column: 0 },
                ),
            });
            out.refreshes += 1;
            next_refresh[rank] += t.trefi;
            now += t.trfc;
            for b in &mut bank_ready[rank] {
                *b = (*b).max(now);
            }
        }
        let act = now.max(bank_ready[rank][flat]);
        let col = act + t.trcd;
        let (col_kind, finish, recovered) = match req.kind {
            RequestKind::Read => {
                (CommandKind::Rda, col + t.cl + t.tbl, col + t.trtp + t.trp)
            }
            RequestKind::Write => (
                CommandKind::Wra,
                col + t.cwl + t.tbl,
                col + t.cwl + t.tbl + t.twr + t.trp,
            ),
        };
        out.commands.push(TimedCommand {
            cycle: act,
            command: Command::new(CommandKind::Act, req.coord),
        });
        out.commands.push(TimedCommand { cycle: col, command: Command::new(col_kind, req.coord) });
        out.completions.push((req.id, finish));
        out.finish_cycle = out.finish_cycle.max(finish);
        bank_ready[rank][flat] = act + t.trc.max(recovered - act);
        // Serial: the next request waits for this one's data *and* its
        // bank recovery, so no two requests' commands ever interleave.
        cursor = recovered.max(finish).max(act + t.tras + t.trp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::TimingChecker;
    use crate::mapping::AddressMapping;
    use crate::system::{DramSystem, MemRequest};

    fn cfg() -> DramConfig {
        DramConfig::enmc_single_rank()
    }

    fn coord(bg: usize, bank: usize, row: usize, col: usize) -> Coord {
        Coord { channel: 0, rank: 0, bank_group: bg, bank, row, column: col }
    }

    fn tc(cycle: u64, kind: CommandKind, c: Coord) -> TimedCommand {
        TimedCommand { cycle, command: Command::new(kind, c) }
    }

    #[test]
    fn replay_accepts_a_legal_stream() {
        let cfg = cfg();
        let t = cfg.timing;
        let c = coord(0, 0, 3, 0);
        let log = vec![
            tc(0, CommandKind::Act, c),
            tc(t.trcd, CommandKind::Rd, c),
            tc(t.tras.max(t.trcd + t.trtp), CommandKind::Pre, c),
            tc(t.trc, CommandKind::Act, coord(0, 0, 4, 0)),
        ];
        let rep = replay_commands(&log, &cfg);
        assert!(rep.divergences.is_empty(), "{:?}", rep.divergences);
        assert_eq!(rep.counts.reads, 1);
        assert_eq!(rep.counts.activations, 2);
        assert_eq!(rep.counts.precharges, 1);
    }

    #[test]
    fn replay_flags_an_early_command() {
        let cfg = cfg();
        let t = cfg.timing;
        let c = coord(0, 0, 3, 0);
        let log = vec![tc(0, CommandKind::Act, c), tc(t.trcd - 1, CommandKind::Rd, c)];
        let rep = replay_commands(&log, &cfg);
        assert_eq!(rep.divergences.len(), 1, "{:?}", rep.divergences);
        assert!(rep.divergences[0].contains("RD"), "{}", rep.divergences[0]);
    }

    #[test]
    fn replay_flags_structural_breakage() {
        let cfg = cfg();
        let c = coord(1, 1, 3, 0);
        let log = vec![
            tc(0, CommandKind::Act, c),
            tc(100, CommandKind::Act, coord(1, 1, 4, 0)), // double ACT
            tc(200, CommandKind::Wr, coord(1, 1, 9, 0)),  // wrong row
        ];
        let rep = replay_commands(&log, &cfg);
        assert!(rep.divergences.iter().any(|d| d.contains("ACT to open bank")));
        assert!(rep.divergences.iter().any(|d| d.contains("while row")));
    }

    #[test]
    fn golden_schedule_is_protocol_clean_and_matches_completions() {
        let cfg = cfg();
        // Mixed pattern through the real controller.
        let mut sys = DramSystem::with_mapping(cfg, AddressMapping::RoRaBaCoBg);
        let mut reqs = Vec::new();
        for i in 0..96u64 {
            let addr = i * 64 + (i % 5) * 16384;
            let write = i % 3 == 0;
            let req = if write { MemRequest::write(addr) } else { MemRequest::read(addr) };
            let id = loop {
                match sys.enqueue(req) {
                    Some(id) => break id,
                    None => sys.tick(), // queue full: make progress
                }
            };
            reqs.push(GoldenRequest {
                id: id.0,
                kind: req.kind,
                coord: AddressMapping::RoRaBaCoBg.decode(addr, &cfg.organization),
                arrival: 0,
            });
        }
        let done = sys.run_until_idle(10_000_000);
        let golden = golden_closed_page(&reqs, &cfg);

        // Same completion set.
        let mut a: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        let mut b: Vec<u64> = golden.completions.iter().map(|&(id, _)| id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        // The pipelined open-page controller must beat the serial
        // closed-page schedule.
        assert!(
            sys.cycle() <= golden.finish_cycle,
            "controller {} vs golden {}",
            sys.cycle(),
            golden.finish_cycle
        );

        // The golden command stream itself conforms: checker + replay.
        let mut ck = TimingChecker::new(cfg.timing, cfg.organization, 0);
        for c in &golden.commands {
            let vs = ck.observe(c.cycle, c.command.kind, &c.command.coord);
            assert!(vs.is_empty(), "golden model violated {:?}", vs);
        }
        let rep = replay_commands(&golden.commands, &cfg);
        assert!(rep.divergences.is_empty(), "{:?}", rep.divergences);
    }

    #[test]
    fn golden_schedule_refreshes_on_long_runs() {
        let cfg = cfg();
        let t = cfg.timing;
        // Two requests far apart in time straddle a tREFI boundary.
        let reqs = [
            GoldenRequest { id: 0, kind: RequestKind::Read, coord: coord(0, 0, 1, 0), arrival: 0 },
            GoldenRequest {
                id: 1,
                kind: RequestKind::Read,
                coord: coord(0, 0, 1, 1),
                arrival: t.trefi + 10,
            },
        ];
        let golden = golden_closed_page(&reqs, &cfg);
        assert_eq!(golden.refreshes, 1);
        let mut ck = TimingChecker::new(cfg.timing, cfg.organization, 0);
        for c in &golden.commands {
            assert!(ck.observe(c.cycle, c.command.kind, &c.command.coord).is_empty());
        }
    }
}
