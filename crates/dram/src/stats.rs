//! DRAM statistics counters.

/// Bank-group slots tracked by [`DramStats::bank_group_accesses`]. DDR4
/// devices have four bank groups; organizations with more fold in
/// modulo.
pub const MAX_BANK_GROUPS: usize = 4;

/// Counters accumulated by a channel controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DramStats {
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Activations issued.
    pub activations: u64,
    /// Precharges issued (incl. auto-precharge and PREA-closed banks).
    pub precharges: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Requests that hit an already-open row.
    pub row_hits: u64,
    /// Requests whose bank was closed (row miss).
    pub row_misses: u64,
    /// Requests that had to close another row first (row conflict).
    pub row_conflicts: u64,
    /// Cycles with data on the DQ bus.
    pub busy_cycles: u64,
    /// Cycles with no pending requests and every bank precharged — the
    /// controller can hold the ranks in precharge power-down.
    pub idle_cycles: u64,
    /// Total cycles observed.
    pub total_cycles: u64,
    /// Column accesses (reads + writes) per bank group, for locality
    /// attribution. Index is `bank_group % MAX_BANK_GROUPS`.
    pub bank_group_accesses: [u64; MAX_BANK_GROUPS],
}

impl DramStats {
    /// Bytes transferred (64 B per column access).
    pub fn bytes(&self) -> u64 {
        (self.reads + self.writes) * 64
    }

    /// Row-hit rate over all classified requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// DQ-bus utilization in `[0, 1]`.
    pub fn bus_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of time the ranks could sit in power-down.
    pub fn idle_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Merges the counters of a controller that ran **in parallel** with
    /// this one (e.g. another channel of the same subsystem, ticked in
    /// lockstep): event counts add, elapsed time is the *maximum* of the
    /// two clocks.
    ///
    /// For controllers that ran one after the other use
    /// [`DramStats::merge_sequential`], which sums `total_cycles`.
    ///
    /// ```
    /// use enmc_dram::DramStats;
    /// let mut a = DramStats { reads: 1, total_cycles: 10, ..Default::default() };
    /// let b = DramStats { reads: 2, total_cycles: 7, ..Default::default() };
    /// a.merge_parallel(&b);
    /// assert_eq!(a.reads, 3);
    /// assert_eq!(a.total_cycles, 10); // wall clock of the slower channel
    /// ```
    pub fn merge_parallel(&mut self, other: &DramStats) {
        self.merge_events(other);
        self.total_cycles = self.total_cycles.max(other.total_cycles);
    }

    /// Merges the counters of a run that happened **after** this one in
    /// the same timing domain (e.g. two jobs executed back to back on one
    /// rank): event counts add and `total_cycles` *sums*, so rates such as
    /// [`DramStats::bus_utilization`] stay meaningful.
    ///
    /// ```
    /// use enmc_dram::DramStats;
    /// let mut a = DramStats { reads: 1, busy_cycles: 4, total_cycles: 10, ..Default::default() };
    /// let b = DramStats { reads: 2, busy_cycles: 6, total_cycles: 7, ..Default::default() };
    /// a.merge_sequential(&b);
    /// assert_eq!(a.reads, 3);
    /// assert_eq!(a.total_cycles, 17); // phases ran back to back
    /// assert!((a.bus_utilization() - 10.0 / 17.0).abs() < 1e-12);
    /// ```
    pub fn merge_sequential(&mut self, other: &DramStats) {
        self.merge_events(other);
        self.total_cycles += other.total_cycles;
    }

    /// The event-count part shared by both merge flavours.
    fn merge_events(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        for (mine, theirs) in
            self.bank_group_accesses.iter_mut().zip(other.bank_group_accesses.iter())
        {
            *mine += theirs;
        }
    }

    /// Records every counter (plus the derived rates as gauges) into a
    /// metrics registry under the `dram.` prefix.
    pub fn record_into(
        &self,
        registry: &mut enmc_obs::MetricsRegistry,
        labels: &[(&str, &str)],
    ) {
        registry.counter_add("dram.reads", labels, self.reads);
        registry.counter_add("dram.writes", labels, self.writes);
        registry.counter_add("dram.activations", labels, self.activations);
        registry.counter_add("dram.precharges", labels, self.precharges);
        registry.counter_add("dram.refreshes", labels, self.refreshes);
        registry.counter_add("dram.row_hits", labels, self.row_hits);
        registry.counter_add("dram.row_misses", labels, self.row_misses);
        registry.counter_add("dram.row_conflicts", labels, self.row_conflicts);
        registry.counter_add("dram.busy_cycles", labels, self.busy_cycles);
        registry.counter_add("dram.idle_cycles", labels, self.idle_cycles);
        registry.counter_add("dram.total_cycles", labels, self.total_cycles);
        registry.counter_add("dram.bytes", labels, self.bytes());
        const BG_METRICS: [&str; MAX_BANK_GROUPS] = [
            "dram.bank_group0_accesses",
            "dram.bank_group1_accesses",
            "dram.bank_group2_accesses",
            "dram.bank_group3_accesses",
        ];
        for (name, count) in BG_METRICS.iter().zip(self.bank_group_accesses.iter()) {
            registry.counter_add(name, labels, *count);
        }
        registry.gauge_set("dram.row_hit_rate", labels, self.row_hit_rate());
        registry.gauge_set("dram.bus_utilization", labels, self.bus_utilization());
        registry.gauge_set("dram.idle_fraction", labels, self.idle_fraction());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_counts_both_directions() {
        let s = DramStats { reads: 3, writes: 2, ..Default::default() };
        assert_eq!(s.bytes(), 320);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        let s = DramStats { row_hits: 3, row_misses: 1, ..Default::default() };
        assert_eq!(s.row_hit_rate(), 0.75);
    }

    #[test]
    fn merge_parallel_adds_counts_and_maxes_cycles() {
        let mut a = DramStats {
            reads: 1,
            total_cycles: 10,
            bank_group_accesses: [1, 0, 0, 2],
            ..Default::default()
        };
        let b = DramStats {
            reads: 2,
            total_cycles: 7,
            busy_cycles: 3,
            bank_group_accesses: [0, 4, 0, 1],
            ..Default::default()
        };
        a.merge_parallel(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.total_cycles, 10);
        assert_eq!(a.busy_cycles, 3);
        assert_eq!(a.bank_group_accesses, [1, 4, 0, 3]);
    }

    #[test]
    fn merge_sequential_sums_cycles() {
        let mut a = DramStats { writes: 4, total_cycles: 10, ..Default::default() };
        let b = DramStats { writes: 1, total_cycles: 7, ..Default::default() };
        a.merge_sequential(&b);
        assert_eq!(a.writes, 5);
        assert_eq!(a.total_cycles, 17);
    }

    #[test]
    fn record_into_exports_counters_and_rates() {
        let s = DramStats {
            reads: 3,
            writes: 1,
            row_hits: 3,
            row_misses: 1,
            busy_cycles: 16,
            total_cycles: 32,
            ..Default::default()
        };
        let mut reg = enmc_obs::MetricsRegistry::new();
        s.record_into(&mut reg, &[("channel", "0")]);
        assert_eq!(reg.counter_value("dram.reads", &[("channel", "0")]), 3);
        assert_eq!(reg.counter_value("dram.bytes", &[("channel", "0")]), 256);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("dram.row_hit_rate", &[("channel", "0")]), Some(0.75));
        assert_eq!(snap.gauge("dram.bus_utilization", &[("channel", "0")]), Some(0.5));
    }
}
