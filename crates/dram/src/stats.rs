//! DRAM statistics counters.

/// Counters accumulated by a channel controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DramStats {
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Activations issued.
    pub activations: u64,
    /// Precharges issued (incl. auto-precharge and PREA-closed banks).
    pub precharges: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Requests that hit an already-open row.
    pub row_hits: u64,
    /// Requests whose bank was closed (row miss).
    pub row_misses: u64,
    /// Requests that had to close another row first (row conflict).
    pub row_conflicts: u64,
    /// Cycles with data on the DQ bus.
    pub busy_cycles: u64,
    /// Cycles with no pending requests and every bank precharged — the
    /// controller can hold the ranks in precharge power-down.
    pub idle_cycles: u64,
    /// Total cycles observed.
    pub total_cycles: u64,
}

impl DramStats {
    /// Bytes transferred (64 B per column access).
    pub fn bytes(&self) -> u64 {
        (self.reads + self.writes) * 64
    }

    /// Row-hit rate over all classified requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// DQ-bus utilization in `[0, 1]`.
    pub fn bus_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of time the ranks could sit in power-down.
    pub fn idle_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Merges another controller's counters into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        self.total_cycles = self.total_cycles.max(other.total_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_counts_both_directions() {
        let s = DramStats { reads: 3, writes: 2, ..Default::default() };
        assert_eq!(s.bytes(), 320);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        let s = DramStats { row_hits: 3, row_misses: 1, ..Default::default() };
        assert_eq!(s.row_hit_rate(), 0.75);
    }

    #[test]
    fn merge_adds_counts_and_maxes_cycles() {
        let mut a = DramStats { reads: 1, total_cycles: 10, ..Default::default() };
        let b = DramStats { reads: 2, total_cycles: 7, busy_cycles: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.total_cycles, 10);
        assert_eq!(a.busy_cycles, 3);
    }
}
