//! DRAM energy model.
//!
//! Event energies and background power are derived from the Micron DDR4
//! 8 Gb ×8 power calculator (IDD0/IDD4R/IDD4W/IDD5B at VDD = 1.2 V),
//! scaled to a rank of eight devices. Fig. 14 of the paper splits energy
//! into *DRAM static* (background + refresh), *DRAM access* (activate +
//! read/write bursts) and *computation & control logic* (reported by the
//! architecture crate); this module provides the first two.

use crate::stats::DramStats;

/// Per-event energies (nanojoules) and background power (watts) for one
/// rank.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyModel {
    /// Energy of one ACT+PRE pair (row activation), nJ.
    pub act_nj: f64,
    /// Energy of one 64-byte read burst, nJ.
    pub read_nj: f64,
    /// Energy of one 64-byte write burst, nJ.
    pub write_nj: f64,
    /// Energy of one all-bank REF command, nJ.
    pub refresh_nj: f64,
    /// Background (standby + clocking) power per rank, W.
    pub background_w: f64,
    /// Background power per rank in precharge power-down, W.
    pub powerdown_w: f64,
    /// Memory-clock period in picoseconds (to convert cycles → time).
    pub tck_ps: f64,
    /// Number of ranks drawing background power.
    pub ranks: usize,
    /// Refresh-interval stretch factor (`tREFI × m`, EDEN-style approximate
    /// DRAM). `1.0` is nominal 64 ms retention; `m > 1` issues `1/m` as many
    /// REF commands for `1/m` the refresh energy, at the cost of retention
    /// bit errors modeled by `enmc-fault`.
    pub refresh_interval_multiplier: f64,
    /// ECC decode surcharge per read/write burst, nJ (0 when the rank runs
    /// without SEC-DED).
    pub ecc_nj_per_access: f64,
}

impl EnergyModel {
    /// DDR4-2400 8 Gb ×8 rank (eight devices).
    pub fn ddr4_2400_rank(ranks: usize) -> Self {
        EnergyModel {
            act_nj: 2.1,
            read_nj: 4.2,
            write_nj: 4.4,
            refresh_nj: 210.0,
            background_w: 0.38,
            powerdown_w: 0.11,
            tck_ps: 833.0,
            ranks,
            refresh_interval_multiplier: 1.0,
            ecc_nj_per_access: 0.0,
        }
    }

    /// Returns the model with the refresh interval stretched by `m ≥ 1`
    /// (REF energy scales as `1/m`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not finite or `m < 1`.
    pub fn with_refresh_multiplier(mut self, m: f64) -> Self {
        assert!(m.is_finite() && m >= 1.0, "refresh multiplier must be >= 1, got {m}");
        self.refresh_interval_multiplier = m;
        self
    }

    /// Returns the model with an ECC energy surcharge of `nj` per
    /// read/write burst.
    ///
    /// # Panics
    ///
    /// Panics if `nj` is not finite or negative.
    pub fn with_ecc_surcharge(mut self, nj: f64) -> Self {
        assert!(nj.is_finite() && nj >= 0.0, "ECC surcharge must be >= 0, got {nj}");
        self.ecc_nj_per_access = nj;
        self
    }

    /// Refresh energy for `refreshes` nominal-schedule REF commands under
    /// the configured interval multiplier. The controller counters always
    /// record the *nominal* schedule; stretching tREFI by `m` issues `1/m`
    /// as many commands.
    pub fn refresh_energy_nj(&self, refreshes: u64) -> f64 {
        refreshes as f64 * self.refresh_nj / self.refresh_interval_multiplier
    }

    /// Computes the breakdown for observed activity.
    pub fn breakdown(&self, stats: &DramStats) -> EnergyBreakdown {
        let access_nj = stats.activations as f64 * self.act_nj
            + stats.reads as f64 * self.read_nj
            + stats.writes as f64 * self.write_nj
            + (stats.reads + stats.writes) as f64 * self.ecc_nj_per_access;
        let refresh_nj = self.refresh_energy_nj(stats.refreshes);
        let seconds = stats.total_cycles as f64 * self.tck_ps * 1e-12;
        // Idle cycles draw power-down power; the rest standby power.
        let idle_s = stats.idle_cycles.min(stats.total_cycles) as f64 * self.tck_ps * 1e-12;
        let active_s = seconds - idle_s;
        let background_nj = (self.background_w * active_s + self.powerdown_w * idle_s)
            * self.ranks as f64
            * 1e9;
        EnergyBreakdown {
            access_nj,
            static_nj: background_nj + refresh_nj,
        }
    }
}

/// DRAM energy split the way Fig. 14 plots it.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct EnergyBreakdown {
    /// Activate + read/write burst energy ("DRAM access").
    pub access_nj: f64,
    /// Background + refresh energy ("DRAM static cost").
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total DRAM energy.
    pub fn total_nj(&self) -> f64 {
        self.access_nj + self.static_nj
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            access_nj: self.access_nj + other.access_nj,
            static_nj: self.static_nj + other.static_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_energy_scales_with_traffic() {
        let m = EnergyModel::ddr4_2400_rank(1);
        let a = m.breakdown(&DramStats { reads: 100, activations: 10, ..Default::default() });
        let b = m.breakdown(&DramStats { reads: 200, activations: 20, ..Default::default() });
        assert!((b.access_nj - 2.0 * a.access_nj).abs() < 1e-9);
    }

    #[test]
    fn static_energy_scales_with_time_and_ranks() {
        let m1 = EnergyModel::ddr4_2400_rank(1);
        let m8 = EnergyModel::ddr4_2400_rank(8);
        let stats = DramStats { total_cycles: 1_000_000, ..Default::default() };
        let e1 = m1.breakdown(&stats);
        let e8 = m8.breakdown(&stats);
        assert!((e8.static_nj - 8.0 * e1.static_nj).abs() < 1e-6);
    }

    #[test]
    fn idle_time_draws_powerdown_power() {
        let m = EnergyModel::ddr4_2400_rank(1);
        let active = m.breakdown(&DramStats { total_cycles: 10_000, ..Default::default() });
        let idle = m.breakdown(&DramStats {
            total_cycles: 10_000,
            idle_cycles: 10_000,
            ..Default::default()
        });
        assert!(idle.static_nj < active.static_nj * 0.5, "{} vs {}", idle.static_nj, active.static_nj);
    }

    #[test]
    fn refresh_counts_as_static() {
        let m = EnergyModel::ddr4_2400_rank(1);
        let without = m.breakdown(&DramStats { total_cycles: 100, ..Default::default() });
        let with =
            m.breakdown(&DramStats { total_cycles: 100, refreshes: 5, ..Default::default() });
        assert!(with.static_nj > without.static_nj);
        assert_eq!(with.access_nj, without.access_nj);
    }

    #[test]
    fn refresh_energy_scales_inversely_with_interval_multiplier() {
        let stats = DramStats { total_cycles: 100, refreshes: 40, ..Default::default() };
        let nominal = EnergyModel::ddr4_2400_rank(1);
        let background = nominal.breakdown(&DramStats { total_cycles: 100, ..Default::default() }).static_nj;
        let refresh_at = |m: f64| {
            nominal.with_refresh_multiplier(m).breakdown(&stats).static_nj - background
        };
        // m = 1 is the nominal 64 ms schedule; m = 4 issues a quarter of
        // the REF commands for a quarter of the energy.
        assert!((refresh_at(1.0) - 40.0 * nominal.refresh_nj).abs() < 1e-9);
        assert!((refresh_at(4.0) - 10.0 * nominal.refresh_nj).abs() < 1e-9);
        // Monotone nonincreasing along a sweep.
        let sweep: Vec<f64> = [1.0, 2.0, 4.0, 8.0, 16.0].iter().map(|&m| refresh_at(m)).collect();
        assert!(sweep.windows(2).all(|w| w[1] <= w[0]), "{sweep:?}");
    }

    #[test]
    fn refresh_multiplier_leaves_access_energy_alone() {
        let stats = DramStats { reads: 64, writes: 8, refreshes: 10, ..Default::default() };
        let a = EnergyModel::ddr4_2400_rank(1).breakdown(&stats);
        let b = EnergyModel::ddr4_2400_rank(1).with_refresh_multiplier(8.0).breakdown(&stats);
        assert_eq!(a.access_nj, b.access_nj);
        assert!(b.static_nj < a.static_nj);
    }

    #[test]
    fn ecc_surcharge_taxes_each_burst() {
        let stats = DramStats { reads: 100, writes: 20, activations: 10, ..Default::default() };
        let plain = EnergyModel::ddr4_2400_rank(1);
        let ecc = plain.with_ecc_surcharge(0.5);
        let delta = ecc.breakdown(&stats).access_nj - plain.breakdown(&stats).access_nj;
        assert!((delta - 120.0 * 0.5).abs() < 1e-9);
        assert_eq!(ecc.breakdown(&stats).static_nj, plain.breakdown(&stats).static_nj);
    }

    #[test]
    #[should_panic(expected = "refresh multiplier")]
    fn refresh_multiplier_below_one_rejected() {
        EnergyModel::ddr4_2400_rank(1).with_refresh_multiplier(0.5);
    }

    #[test]
    #[should_panic(expected = "ECC surcharge")]
    fn negative_ecc_surcharge_rejected() {
        EnergyModel::ddr4_2400_rank(1).with_ecc_surcharge(-1.0);
    }

    #[test]
    fn breakdown_addition() {
        let a = EnergyBreakdown { access_nj: 1.0, static_nj: 2.0 };
        let s = a.add(&a);
        assert_eq!(s.total_nj(), 6.0);
    }
}
