//! Deterministic DRAM traffic fuzzer.
//!
//! Generates seeded adversarial access patterns, drives them through the
//! real FR-FCFS controller with the [`crate::checker::TimingChecker`] and
//! command log enabled, then cross-validates the run against the golden
//! reference model ([`crate::golden`]): command-stream replay, counter
//! audit, completion-set equality with the closed-page serial schedule,
//! and the serial upper bound on cycle count. Any failing case shrinks —
//! ddmin-style, fully deterministically — to a minimal reproducer that
//! serializes to JSON for check-in as a regression fixture.
//!
//! Everything is a pure function of `(pattern, seed, len, injected bug)`:
//! no wall clock, no global RNG, so CI failures replay exactly.

use crate::checker::{ProtocolViolation, TimingChecker};
use crate::config::{DramConfig, Timing};
use crate::golden::{audit_channel, golden_closed_page, GoldenRequest};
use crate::mapping::AddressMapping;
use crate::system::{DramSystem, MemRequest, RequestKind};
use enmc_obs::json::Value;

/// One fuzzed memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzRequest {
    /// Earliest cycle the request is presented to the controller.
    pub at: u64,
    /// Byte address (burst aligned by the generator).
    pub addr: u64,
    /// Write (vs read).
    pub write: bool,
}

impl FuzzRequest {
    fn to_mem(self) -> MemRequest {
        if self.write {
            MemRequest::write(self.addr)
        } else {
            MemRequest::read(self.addr)
        }
    }
}

/// SplitMix64 — tiny, seedable, and good enough for traffic shapes;
/// keeps this crate free of an RNG dependency.
#[derive(Debug, Clone, Copy)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x2545_f491_4f6c_dd1d))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// The adversarial traffic shapes the fuzzer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Sequential burst sweep — the screener's streaming shape (tCCD_S).
    StreamSweep,
    /// Two-row ping-pong on a single bank (tRC/tRAS/tRP/tRTP pressure).
    SameBankHammer,
    /// Round-robin activations over every bank (tRRD/tFAW pressure).
    BankGroupConflict,
    /// Request bursts timed to land across tREFI boundaries (PREA drain +
    /// REF + tRFC re-warm).
    RefreshStraddle,
    /// Uniformly random rows — every access a miss or conflict.
    RowThrash,
    /// Tight read/write alternation on open rows (tWTR / read→write).
    TurnaroundMix,
    /// picoram-style moving-inversion memtest walk: write a row window
    /// ascending, then read-and-write-back (the 0→1→0 inversion) walking
    /// ascending, then again descending — per-preset stress on row
    /// open/close, turnaround, and both walk directions.
    MovingInversion,
}

impl PatternKind {
    /// Every pattern, in the order the CLI fuzzes them.
    pub const ALL: [PatternKind; 7] = [
        PatternKind::StreamSweep,
        PatternKind::SameBankHammer,
        PatternKind::BankGroupConflict,
        PatternKind::RefreshStraddle,
        PatternKind::RowThrash,
        PatternKind::TurnaroundMix,
        PatternKind::MovingInversion,
    ];

    /// Stable CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::StreamSweep => "stream-sweep",
            PatternKind::SameBankHammer => "same-bank-hammer",
            PatternKind::BankGroupConflict => "bank-group-conflict",
            PatternKind::RefreshStraddle => "refresh-straddle",
            PatternKind::RowThrash => "row-thrash",
            PatternKind::TurnaroundMix => "turnaround-mix",
            PatternKind::MovingInversion => "moving-inversion",
        }
    }

    /// Inverse of [`PatternKind::name`].
    pub fn parse(s: &str) -> Option<PatternKind> {
        Self::ALL.iter().copied().find(|p| p.name() == s)
    }

    /// Generates `len` requests for `seed`, already sorted by arrival.
    pub fn generate(
        self,
        seed: u64,
        len: usize,
        cfg: &DramConfig,
        mapping: AddressMapping,
    ) -> Vec<FuzzRequest> {
        let org = cfg.organization;
        let mut rng = Rng::new(seed ^ (self as u64) << 32);
        let enc = |bg: usize, bank: usize, row: usize, col: usize| {
            mapping.encode(
                &crate::mapping::Coord {
                    channel: 0,
                    rank: 0,
                    bank_group: bg % org.bank_groups,
                    bank: bank % org.banks_per_group,
                    row: row % org.rows,
                    column: col % org.bursts_per_row(),
                },
                &org,
            )
        };
        let mut out = Vec::with_capacity(len);
        match self {
            PatternKind::StreamSweep => {
                let base = (rng.below(org.channel_bytes() / 2)) & !63;
                for i in 0..len as u64 {
                    out.push(FuzzRequest {
                        at: i / 2,
                        addr: base + i * 64,
                        write: rng.chance(10),
                    });
                }
            }
            PatternKind::SameBankHammer => {
                let (bg, bank) = (rng.below(4) as usize, rng.below(4) as usize);
                let row = rng.below(1024) as usize;
                for i in 0..len {
                    out.push(FuzzRequest {
                        at: i as u64,
                        addr: enc(bg, bank, row + (i & 1), rng.below(16) as usize),
                        write: rng.chance(20),
                    });
                }
            }
            PatternKind::BankGroupConflict => {
                let row = rng.below(4096) as usize;
                let banks = org.banks_per_rank();
                for i in 0..len {
                    out.push(FuzzRequest {
                        at: (i / 4) as u64,
                        addr: enc(i % 4, (i / 4) % 4, row + i / banks, 0),
                        write: rng.chance(15),
                    });
                }
            }
            PatternKind::RefreshStraddle => {
                let trefi = cfg.timing.trefi;
                let burst = (len / 4).max(1);
                for i in 0..len {
                    let k = 1 + (i / burst) as u64;
                    out.push(FuzzRequest {
                        at: (k * trefi).saturating_sub(25) + (i % burst) as u64,
                        addr: enc(
                            rng.below(4) as usize,
                            rng.below(4) as usize,
                            rng.below(64) as usize,
                            rng.below(8) as usize,
                        ),
                        write: rng.chance(25),
                    });
                }
            }
            PatternKind::RowThrash => {
                for i in 0..len {
                    out.push(FuzzRequest {
                        at: (i / 2) as u64,
                        addr: enc(
                            rng.below(4) as usize,
                            rng.below(4) as usize,
                            rng.below(org.rows as u64) as usize,
                            rng.below(org.bursts_per_row() as u64) as usize,
                        ),
                        write: rng.chance(30),
                    });
                }
            }
            PatternKind::TurnaroundMix => {
                let rows = [rng.below(512) as usize, rng.below(512) as usize];
                for i in 0..len {
                    out.push(FuzzRequest {
                        at: i as u64,
                        addr: enc(i % 2, 0, rows[i % 2], (i / 2) % 32),
                        write: i % 2 == (seed % 2) as usize,
                    });
                }
            }
            PatternKind::MovingInversion => {
                // Three passes over a row window in one bank: write the
                // window ascending, then invert (read + write-back) each
                // word ascending, then invert again descending. Window
                // sized so the three passes emit at least `len` requests.
                let (bg, bank) = (rng.below(4) as usize, rng.below(4) as usize);
                let cols = 8usize;
                let window = (len.div_ceil(5 * cols)).max(1);
                let base_row = rng.below(4096) as usize;
                let mut ops: Vec<(usize, usize, bool)> = Vec::new();
                for r in 0..window {
                    for c in 0..cols {
                        ops.push((base_row + r, c, true));
                    }
                }
                for r in 0..window {
                    for c in 0..cols {
                        ops.push((base_row + r, c, false));
                        ops.push((base_row + r, c, true));
                    }
                }
                for r in (0..window).rev() {
                    for c in (0..cols).rev() {
                        ops.push((base_row + r, c, false));
                        ops.push((base_row + r, c, true));
                    }
                }
                for (i, &(row, col, write)) in ops.iter().take(len).enumerate() {
                    out.push(FuzzRequest { at: (i / 2) as u64, addr: enc(bg, bank, row, col), write });
                }
            }
        }
        out
    }
}

/// A deliberately planted controller-timing bug, for validating that the
/// checker and fuzzer actually catch violations (the conformance suite's
/// "would we notice?" test, run in CI via `enmc fuzz-dram --inject-bug`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// tFAW window one cycle short.
    TfawMinusOne,
    /// tRCD one cycle short.
    TrcdMinusOne,
    /// tRP one cycle short.
    TrpMinusOne,
    /// Write→read turnaround one cycle short.
    TwtrMinusOne,
}

impl InjectedBug {
    /// Every bug the fuzzer can plant.
    pub const ALL: [InjectedBug; 4] = [
        InjectedBug::TfawMinusOne,
        InjectedBug::TrcdMinusOne,
        InjectedBug::TrpMinusOne,
        InjectedBug::TwtrMinusOne,
    ];

    /// Stable CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            InjectedBug::TfawMinusOne => "tfaw-1",
            InjectedBug::TrcdMinusOne => "trcd-1",
            InjectedBug::TrpMinusOne => "trp-1",
            InjectedBug::TwtrMinusOne => "twtr-1",
        }
    }

    /// Inverse of [`InjectedBug::name`].
    pub fn parse(s: &str) -> Option<InjectedBug> {
        Self::ALL.iter().copied().find(|b| b.name() == s)
    }

    /// The buggy timing the controller will (incorrectly) schedule with.
    pub fn apply(self, mut t: Timing) -> Timing {
        match self {
            InjectedBug::TfawMinusOne => t.tfaw -= 1,
            InjectedBug::TrcdMinusOne => t.trcd -= 1,
            InjectedBug::TrpMinusOne => t.trp -= 1,
            InjectedBug::TwtrMinusOne => t.twtr -= 1,
        }
        t
    }
}

/// Everything one fuzz case produced.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Protocol violations the checker recorded.
    pub violations: Vec<ProtocolViolation>,
    /// Golden-model divergences (replay, counters, completions, bound).
    pub divergences: Vec<String>,
    /// Cycle the controller went idle at.
    pub controller_cycles: u64,
    /// Cycle the golden closed-page schedule finished at.
    pub golden_cycles: u64,
}

impl FuzzOutcome {
    /// `true` when the run conformed and cross-validated cleanly.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.divergences.is_empty()
    }
}

/// Drives `reqs` through the controller (configured with `cfg`, which may
/// carry an injected bug) while checking against `reference` timing, then
/// cross-validates against the golden model (always using `reference`).
pub fn run_case(
    reqs: &[FuzzRequest],
    cfg: &DramConfig,
    mapping: AddressMapping,
    reference: &Timing,
) -> FuzzOutcome {
    let mut out = FuzzOutcome::default();
    let mut sys = DramSystem::with_mapping(*cfg, mapping);
    sys.enable_protocol_check_against(*reference);
    sys.enable_command_log();
    let limit = reqs.last().map(|r| r.at).unwrap_or(0)
        + 2000 * reqs.len() as u64
        + 4 * cfg.timing.trefi;
    let mut completions = Vec::with_capacity(reqs.len());
    let mut next = 0usize;
    while next < reqs.len() || !sys.is_idle() {
        while next < reqs.len() && reqs[next].at <= sys.cycle() {
            if sys.enqueue(reqs[next].to_mem()).is_some() {
                next += 1;
            } else {
                break; // queue full: tick and retry
            }
        }
        sys.tick();
        completions.extend(sys.drain_completions());
        if sys.cycle() > limit {
            out.divergences.push(format!("controller stalled past cycle {limit}"));
            break;
        }
    }
    out.controller_cycles = sys.cycle();
    out.violations = sys.take_protocol_violations();

    // Golden cross-validation runs with the *reference* timing.
    let golden_cfg = DramConfig { timing: *reference, ..*cfg };

    // 1. Replay + counter audit, per channel.
    let logs = sys.take_command_log();
    let stats = sys.channel_stats();
    for (ch, (log, st)) in logs.iter().zip(stats.iter()).enumerate() {
        for d in audit_channel(log, st, &golden_cfg) {
            out.divergences.push(format!("channel {ch}: {d}"));
        }
    }

    // 2. Closed-page serial schedule: completion-set equality and the
    // serial upper bound. Requests are grouped per channel in enqueue
    // order; enqueue order equals request order, so ids are the indices.
    let org = cfg.organization;
    let mut per_channel: Vec<Vec<GoldenRequest>> = vec![Vec::new(); org.channels];
    for (i, r) in reqs.iter().enumerate() {
        let coord = mapping.decode(r.addr, &org);
        per_channel[coord.channel].push(GoldenRequest {
            id: i as u64,
            kind: if r.write { RequestKind::Write } else { RequestKind::Read },
            coord,
            arrival: r.at,
        });
    }
    let mut golden_ids: Vec<u64> = Vec::with_capacity(reqs.len());
    for chan_reqs in &per_channel {
        let golden = golden_closed_page(chan_reqs, &golden_cfg);
        out.golden_cycles = out.golden_cycles.max(golden.finish_cycle);
        golden_ids.extend(golden.completions.iter().map(|&(id, _)| id));
        // The golden model checks itself: its own command stream must be
        // violation-free under the reference checker.
        let mut ck = TimingChecker::new(*reference, org, 0);
        for c in &golden.commands {
            let vs = ck.observe(c.cycle, c.command.kind, &c.command.coord);
            if !vs.is_empty() {
                out.divergences
                    .push(format!("golden model self-check failed at cycle {}", c.cycle));
            }
        }
    }
    let mut ctrl_ids: Vec<u64> = completions.iter().map(|c| c.id.0).collect();
    ctrl_ids.sort_unstable();
    golden_ids.sort_unstable();
    if ctrl_ids != golden_ids {
        out.divergences.push(format!(
            "completion sets differ: controller {} vs golden {}",
            ctrl_ids.len(),
            golden_ids.len()
        ));
    }
    // The pipelined controller must not be slower than the fully serial
    // closed-page schedule (small slack for a trailing refresh).
    let bound = out.golden_cycles + cfg.timing.trfc + 64;
    if out.controller_cycles > bound {
        out.divergences.push(format!(
            "controller needed {} cycles, serial golden bound is {bound}",
            out.controller_cycles
        ));
    }
    out
}

/// Generates and runs one `(pattern, seed)` case on the single-rank ENMC
/// configuration, optionally planting `bug` in the controller's timing.
pub fn run_seed(
    pattern: PatternKind,
    seed: u64,
    len: usize,
    bug: Option<InjectedBug>,
) -> (Vec<FuzzRequest>, FuzzOutcome) {
    run_seed_on(&DramConfig::enmc_single_rank(), pattern, seed, len, bug)
}

/// [`run_seed`] against an arbitrary single-rank reference configuration
/// — the memory-technology preset entry point: the generator, the
/// controller under test, the checker, and the golden model all derive
/// their constraint sets from `reference`.
pub fn run_seed_on(
    reference: &DramConfig,
    pattern: PatternKind,
    seed: u64,
    len: usize,
    bug: Option<InjectedBug>,
) -> (Vec<FuzzRequest>, FuzzOutcome) {
    let mut cfg = *reference;
    if let Some(b) = bug {
        cfg.timing = b.apply(cfg.timing);
    }
    let reqs = pattern.generate(seed, len, reference, AddressMapping::RoRaBaCoBg);
    let outcome = run_case(&reqs, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing);
    (reqs, outcome)
}

/// ddmin-style greedy shrink: repeatedly removes chunks (halving the
/// chunk size down to single requests) while `fails` keeps reporting the
/// failure. Deterministic; the result is 1-minimal with respect to
/// removal.
pub fn shrink<F: Fn(&[FuzzRequest]) -> bool>(reqs: &[FuzzRequest], fails: F) -> Vec<FuzzRequest> {
    let mut cur = reqs.to_vec();
    if cur.is_empty() || !fails(&cur) {
        return cur;
    }
    let mut parts = 2usize;
    loop {
        let chunk = cur.len().div_ceil(parts).max(1);
        let mut reduced = false;
        let mut start = 0usize;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                reduced = true;
                // Same granularity, rescan from the front.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            parts = (parts * 2).min(cur.len());
        } else {
            parts = parts.min(cur.len().max(2));
        }
    }
    cur
}

/// A minimized failing case, serializable for check-in under
/// `tests/golden/fuzz_repro_*.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// Pattern that produced the case.
    pub pattern: String,
    /// Seed that produced the case.
    pub seed: u64,
    /// The injected controller bug, if any.
    pub bug: Option<String>,
    /// Memory-technology preset name the case ran under (`None` = the
    /// DDR4 baseline; resolved by the CLI, which knows the preset table).
    pub memory: Option<String>,
    /// The minimized request list.
    pub requests: Vec<FuzzRequest>,
}

impl Reproducer {
    /// Serializes to pretty-stable compact JSON.
    pub fn to_json(&self) -> String {
        let reqs: Vec<Value> = self
            .requests
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("at".to_string(), Value::Int(r.at as i64)),
                    ("addr".to_string(), Value::Int(r.addr as i64)),
                    ("write".to_string(), Value::Bool(r.write)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("pattern".to_string(), Value::Str(self.pattern.clone())),
            ("seed".to_string(), Value::Int(self.seed as i64)),
            (
                "bug".to_string(),
                match &self.bug {
                    Some(b) => Value::Str(b.clone()),
                    None => Value::Null,
                },
            ),
        ];
        // Only non-baseline cases carry the field, so pre-preset fixtures
        // stay byte-identical through a round-trip.
        if let Some(m) = &self.memory {
            fields.push(("memory".to_string(), Value::Str(m.clone())));
        }
        fields.push(("requests".to_string(), Value::Arr(reqs)));
        Value::Obj(fields).to_json()
    }

    /// Parses a reproducer back from JSON.
    pub fn from_json(text: &str) -> Result<Reproducer, String> {
        let v = Value::parse(text).map_err(|e| format!("bad reproducer JSON: {e:?}"))?;
        let pattern = v
            .get("pattern")
            .and_then(Value::as_str)
            .ok_or("missing pattern")?
            .to_string();
        let seed = v.get("seed").and_then(Value::as_u64).ok_or("missing seed")?;
        let bug = match v.get("bug") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let memory = match v.get("memory") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let mut requests = Vec::new();
        for r in v.get("requests").and_then(Value::as_arr).ok_or("missing requests")? {
            requests.push(FuzzRequest {
                at: r.get("at").and_then(Value::as_u64).ok_or("missing at")?,
                addr: r.get("addr").and_then(Value::as_u64).ok_or("missing addr")?,
                write: r.get("write").and_then(Value::as_bool).ok_or("missing write")?,
            });
        }
        Ok(Reproducer { pattern, seed, bug, memory, requests })
    }

    /// Re-runs the minimized case exactly as the fuzzer would, on the
    /// baseline configuration. Cases recorded under a non-baseline
    /// `memory` preset must go through [`Reproducer::replay_on`] with the
    /// resolved configuration instead.
    pub fn replay(&self) -> FuzzOutcome {
        self.replay_on(&DramConfig::enmc_single_rank())
    }

    /// Re-runs the minimized case against `reference` (the single-rank
    /// configuration of the preset named in `memory`).
    pub fn replay_on(&self, reference: &DramConfig) -> FuzzOutcome {
        let mut cfg = *reference;
        if let Some(b) = self.bug.as_deref().and_then(InjectedBug::parse) {
            cfg.timing = b.apply(cfg.timing);
        }
        run_case(&self.requests, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_are_deterministic() {
        let cfg = DramConfig::enmc_single_rank();
        for p in PatternKind::ALL {
            let a = p.generate(7, 64, &cfg, AddressMapping::RoRaBaCoBg);
            let b = p.generate(7, 64, &cfg, AddressMapping::RoRaBaCoBg);
            assert_eq!(a, b, "{}", p.name());
            assert_eq!(a.len(), 64);
            assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "{} arrivals unsorted", p.name());
            let c = p.generate(8, 64, &cfg, AddressMapping::RoRaBaCoBg);
            assert_ne!(a, c, "{} ignores its seed", p.name());
        }
    }

    #[test]
    fn clean_controller_fuzzes_clean() {
        for p in PatternKind::ALL {
            let (_, outcome) = run_seed(p, 3, 48, None);
            assert!(
                outcome.is_clean(),
                "{}: violations {:?} divergences {:?}",
                p.name(),
                outcome.violations,
                outcome.divergences
            );
            assert!(outcome.controller_cycles <= outcome.golden_cycles + 500);
        }
    }

    #[test]
    fn injected_trcd_bug_is_caught_and_shrinks() {
        let (reqs, outcome) = run_seed(PatternKind::RowThrash, 11, 64, Some(InjectedBug::TrcdMinusOne));
        assert!(!outcome.is_clean(), "tRCD-1 not caught");
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.rule == crate::checker::Rule::Trcd));
        let reference = DramConfig::enmc_single_rank();
        let mut cfg = reference;
        cfg.timing = InjectedBug::TrcdMinusOne.apply(cfg.timing);
        let minimal = shrink(&reqs, |r| {
            !run_case(r, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing).is_clean()
        });
        assert!(!minimal.is_empty());
        assert!(minimal.len() <= reqs.len());
        // A single cold read reproduces a tRCD violation, so the shrinker
        // should reach (or closely approach) one request.
        assert!(minimal.len() <= 2, "shrunk to {} requests", minimal.len());
        let still = run_case(&minimal, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing);
        assert!(!still.is_clean());
    }

    #[test]
    fn reproducer_roundtrips_through_json() {
        let repro = Reproducer {
            pattern: "row-thrash".to_string(),
            seed: 11,
            bug: Some("trcd-1".to_string()),
            memory: None,
            requests: vec![
                FuzzRequest { at: 0, addr: 64, write: false },
                FuzzRequest { at: 3, addr: 128, write: true },
            ],
        };
        let text = repro.to_json();
        assert!(!text.contains("memory"), "baseline cases must omit the field");
        let back = Reproducer::from_json(&text).expect("parses");
        assert_eq!(back, repro);
        assert!(!back.replay().is_clean());
    }

    #[test]
    fn reproducer_memory_field_roundtrips() {
        let repro = Reproducer {
            pattern: "moving-inversion".to_string(),
            seed: 1,
            bug: None,
            memory: Some("ddr5-4800".to_string()),
            requests: vec![FuzzRequest { at: 0, addr: 64, write: true }],
        };
        let text = repro.to_json();
        assert!(text.contains("\"memory\":\"ddr5-4800\""));
        assert_eq!(Reproducer::from_json(&text).expect("parses"), repro);
    }

    #[test]
    fn moving_inversion_walks_one_bank_in_three_passes() {
        let cfg = DramConfig::enmc_single_rank();
        let reqs =
            PatternKind::MovingInversion.generate(5, 80, &cfg, AddressMapping::RoRaBaCoBg);
        assert_eq!(reqs.len(), 80);
        // First pass is all writes; inversion passes alternate read/write.
        assert!(reqs.iter().take(8).all(|r| r.write));
        let tail: Vec<bool> = reqs.iter().skip(16).map(|r| r.write).collect();
        assert!(tail.chunks(2).take(8).all(|c| c == [false, true]), "inversion pairs");
        // Everything lands in one bank.
        let org = cfg.organization;
        let coords: Vec<_> =
            reqs.iter().map(|r| AddressMapping::RoRaBaCoBg.decode(r.addr, &org)).collect();
        assert!(coords.iter().all(|c| (c.bank_group, c.bank) == (coords[0].bank_group, coords[0].bank)));
    }

    #[test]
    fn run_seed_on_matches_run_seed_for_the_baseline() {
        let baseline = DramConfig::enmc_single_rank();
        for p in [PatternKind::StreamSweep, PatternKind::MovingInversion] {
            let (a_reqs, a_out) = run_seed(p, 9, 32, None);
            let (b_reqs, b_out) = run_seed_on(&baseline, p, 9, 32, None);
            assert_eq!(a_reqs, b_reqs);
            assert_eq!(a_out.controller_cycles, b_out.controller_cycles);
            assert!(b_out.is_clean());
        }
    }
}
