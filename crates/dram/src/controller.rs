//! Per-channel memory controller: request queue, FR-FCFS scheduling,
//! open-page policy, demand refresh.
//!
//! The controller issues at most one command per memory-clock cycle on the
//! channel's C/A bus. Scheduling follows FR-FCFS (first-ready,
//! first-come-first-served):
//!
//! 1. an overdue refresh takes absolute priority (closing banks with PREA
//!    first if needed);
//! 2. the oldest request whose row is already open ("row hit") issues its
//!    column command;
//! 3. otherwise the oldest request whose bank is closed issues ACT;
//! 4. otherwise the oldest request with a conflicting open row issues PRE.
//!
//! This mirrors the paper's note that the on-DIMM DRAM controller is a
//! simplified host-style controller ("we do not deploy unnecessary
//! features like queue prioritizing, request coalescing").

use crate::checker::{ProtocolViolation, TimingChecker};
use crate::command::{Command, CommandKind, TimedCommand};
use crate::config::{DramConfig, PagePolicy, Timing};
use crate::mapping::Coord;
use crate::rank::RankState;
use crate::stats::{DramStats, MAX_BANK_GROUPS};
use crate::system::{Completion, RequestId, RequestKind};
use enmc_obs::trace::{TraceBuffer, TraceEvent, TraceSink, CAT_DRAM, CAT_PROTOCOL, TID_COUNTERS};

/// Cycle stride between sampled counter-track events (queue depth, open
/// rows) when tracing is enabled. Coarse enough to keep counter volume
/// two orders of magnitude below command events, fine enough to show
/// queue build-up within one row cycle.
pub const COUNTER_SAMPLE_INTERVAL: u64 = 64;

/// A request queued inside the controller.
#[derive(Debug, Clone)]
struct Entry {
    id: RequestId,
    kind: RequestKind,
    coord: Coord,
    arrived: u64,
    /// Set once this entry has caused a PRE (conflict) so it is only
    /// classified once in the stats.
    classified: bool,
}

/// One channel's controller and its ranks.
#[derive(Debug, Clone)]
pub struct ChannelController {
    config: DramConfig,
    ranks: Vec<RankState>,
    queue: Vec<Entry>,
    /// Cycle of the next due refresh, per rank.
    next_refresh: Vec<u64>,
    /// Ranks with an overdue refresh.
    refresh_due: Vec<bool>,
    stats: DramStats,
    /// Command-event trace collector; `None` (the default) costs one
    /// branch per issued command and nothing else.
    trace: Option<TraceBuffer>,
    /// `pid` stamped on emitted events (the channel index, by convention).
    trace_pid: u32,
    /// DDR4 protocol conformance checker shadowing every issued command;
    /// `None` (the default) keeps the release path at one branch per
    /// command.
    checker: Option<TimingChecker>,
    /// Issue-stamped command log for golden-model replay; `None` by
    /// default.
    cmd_log: Option<Vec<TimedCommand>>,
}

impl ChannelController {
    /// A controller for one channel of `config`.
    pub fn new(config: DramConfig) -> Self {
        let ranks = (0..config.organization.ranks)
            .map(|_| RankState::new(&config.organization, &config.timing))
            .collect();
        let trefi = config.timing.trefi;
        ChannelController {
            ranks,
            queue: Vec::with_capacity(config.queue_depth),
            next_refresh: (0..config.organization.ranks).map(|_| trefi).collect(),
            refresh_due: vec![false; config.organization.ranks],
            stats: DramStats::default(),
            trace: None,
            trace_pid: 0,
            checker: None,
            cmd_log: None,
            config,
        }
    }

    /// Starts collecting command events into a ring of `capacity` events,
    /// stamped with `pid` (the channel index).
    pub fn enable_trace(&mut self, capacity: usize, pid: u32) {
        self.trace = Some(TraceBuffer::new(capacity));
        self.trace_pid = pid;
    }

    /// `true` when command events are being collected.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Removes and returns the collected events (collection stays on).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(TraceBuffer::drain).unwrap_or_default()
    }

    /// Emits one command event when tracing is enabled. `tid` is the flat
    /// bank index within the channel, so each bank gets its own track.
    fn trace_cmd(&mut self, now: u64, kind: CommandKind, coord: &Coord) {
        let Some(trace) = self.trace.as_mut() else { return };
        let org = &self.config.organization;
        let bank = coord.flat_bank(org);
        let tid = (coord.rank * org.banks_per_rank() + bank) as u32;
        trace.record(
            TraceEvent::instant(kind.name(), CAT_DRAM, now, self.trace_pid, tid)
                .with_arg("rank", coord.rank as u64)
                .with_arg("bank", bank as u64)
                .with_arg("row", coord.row as u64)
                .with_arg("column", coord.column as u64),
        );
    }

    /// Emits sampled counter-track events (queue depth, open rows) when
    /// tracing is enabled; called every [`COUNTER_SAMPLE_INTERVAL`]
    /// cycles from [`ChannelController::tick`].
    fn trace_counters(&mut self, now: u64) {
        let Some(trace) = self.trace.as_mut() else { return };
        let open_rows: usize = self
            .ranks
            .iter()
            .map(|r| (0..r.banks()).filter(|&b| r.open_row(b).is_some()).count())
            .sum();
        trace.record(
            TraceEvent::counter("queue_depth", CAT_DRAM, now, self.trace_pid, TID_COUNTERS)
                .with_arg("value", self.queue.len() as u64),
        );
        trace.record(
            TraceEvent::counter("open_rows", CAT_DRAM, now, self.trace_pid, TID_COUNTERS)
                .with_arg("value", open_rows as u64),
        );
    }

    /// Starts shadowing every issued command with a
    /// [`TimingChecker`] validating against `reference` timing (usually
    /// the configured timing; pass the true Table 3 values to audit a
    /// deliberately mis-timed controller). `channel` stamps the recorded
    /// violations.
    pub fn enable_protocol_check(&mut self, reference: Timing, channel: u32) {
        self.checker = Some(TimingChecker::new(reference, self.config.organization, channel));
    }

    /// `true` when a protocol checker is attached.
    pub fn protocol_check_enabled(&self) -> bool {
        self.checker.is_some()
    }

    /// Total violations observed so far (0 when the checker is off).
    pub fn protocol_violation_count(&self) -> u64 {
        self.checker.as_ref().map(TimingChecker::violation_count).unwrap_or(0)
    }

    /// The recorded violations (capped; see [`crate::checker`]).
    pub fn protocol_violations(&self) -> &[ProtocolViolation] {
        self.checker.as_ref().map(TimingChecker::violations).unwrap_or(&[])
    }

    /// Removes and returns the recorded violations (checking stays on).
    pub fn take_protocol_violations(&mut self) -> Vec<ProtocolViolation> {
        self.checker.as_mut().map(TimingChecker::take_violations).unwrap_or_default()
    }

    /// Starts logging every issued command with its issue cycle, for
    /// golden-model replay ([`crate::golden::replay_commands`]).
    pub fn enable_command_log(&mut self) {
        self.cmd_log = Some(Vec::new());
    }

    /// Removes and returns the command log so far (logging stays on).
    pub fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.cmd_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Single funnel for every issued command: trace event, command log,
    /// and protocol check. Fresh violations are mirrored into the trace
    /// (category [`CAT_PROTOCOL`]) so they land next to the offending
    /// command in timeline views.
    fn observe_cmd(&mut self, now: u64, kind: CommandKind, coord: &Coord) {
        self.trace_cmd(now, kind, coord);
        if let Some(log) = self.cmd_log.as_mut() {
            log.push(TimedCommand { cycle: now, command: Command::new(kind, *coord) });
        }
        let fresh = match self.checker.as_mut() {
            Some(ck) => ck.observe(now, kind, coord),
            None => Vec::new(),
        };
        if fresh.is_empty() {
            return;
        }
        if let Some(trace) = self.trace.as_mut() {
            let org = &self.config.organization;
            let tid = (coord.rank * org.banks_per_rank() + coord.flat_bank(org)) as u32;
            for v in &fresh {
                trace.record(
                    TraceEvent::instant(v.rule.name(), CAT_PROTOCOL, now, self.trace_pid, tid)
                        .with_arg("earliest_legal", v.earliest_legal)
                        .with_arg("rank", v.rank as u64)
                        .with_arg("bank_group", v.bank_group as u64)
                        .with_arg("bank", v.bank as u64),
                );
            }
        }
    }

    /// Number of free queue slots.
    pub fn free_slots(&self) -> usize {
        self.config.queue_depth - self.queue.len()
    }

    /// `true` when no requests are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Enqueues a request. Returns `false` (rejecting it) when the queue is
    /// full.
    pub fn enqueue(&mut self, id: RequestId, kind: RequestKind, coord: Coord, now: u64) -> bool {
        if self.queue.len() >= self.config.queue_depth {
            return false;
        }
        self.queue.push(Entry { id, kind, coord, arrived: now, classified: false });
        true
    }

    /// Advances one memory-clock cycle; returns a completion if a column
    /// command finished a request this cycle.
    pub fn tick(&mut self, now: u64) -> Option<Completion> {
        self.stats.total_cycles = now + 1;
        if self.trace.is_some() && now % COUNTER_SAMPLE_INTERVAL == 0 {
            self.trace_counters(now);
        }
        if self.queue.is_empty() && self.ranks.iter().all(RankState::all_closed) {
            // Eligible for precharge power-down this cycle.
            self.stats.idle_cycles += 1;
        }
        // Mark refreshes that have become due.
        for r in 0..self.ranks.len() {
            if now >= self.next_refresh[r] {
                self.refresh_due[r] = true;
            }
        }
        // 1. Refresh has priority.
        for r in 0..self.ranks.len() {
            if !self.refresh_due[r] {
                continue;
            }
            let any = Coord { channel: 0, rank: r, bank_group: 0, bank: 0, row: 0, column: 0 };
            if self.ranks[r].all_closed() {
                if self.ranks[r].earliest(CommandKind::Ref, &any) <= now {
                    self.ranks[r].issue(CommandKind::Ref, &any, now);
                    self.observe_cmd(now, CommandKind::Ref, &any);
                    self.stats.refreshes += 1;
                    self.refresh_due[r] = false;
                    self.next_refresh[r] += self.config.timing.trefi;
                    return None;
                }
            } else if self.ranks[r].earliest(CommandKind::PreA, &any) <= now {
                self.ranks[r].issue(CommandKind::PreA, &any, now);
                self.observe_cmd(now, CommandKind::PreA, &any);
                self.stats.precharges += 1;
                return None;
            }
            // Wait for the rank to become refreshable before serving it.
        }

        // 2. FR-FCFS: oldest-first row hit. Same-address requests must not
        // reorder (RAW/WAR/WAW): a younger request to a coordinate an older
        // queued request also targets is held back.
        let mut hit_idx: Option<usize> = None;
        let mut act_idx: Option<usize> = None;
        let mut pre_idx: Option<usize> = None;
        let mut seen: Vec<Coord> = Vec::with_capacity(self.queue.len());
        for (i, e) in self.queue.iter().enumerate() {
            let hazard = seen.contains(&e.coord);
            seen.push(e.coord);
            if hazard {
                continue; // an older same-address request must go first
            }
            if self.refresh_due[e.coord.rank] {
                continue; // rank is draining for refresh
            }
            let rank = &self.ranks[e.coord.rank];
            let flat = e.coord.flat_bank(&self.config.organization);
            match rank.open_row(flat) {
                Some(row) if row == e.coord.row => {
                    let cmd = column_command(e.kind);
                    if rank.earliest(cmd, &e.coord) <= now && hit_idx.is_none() {
                        hit_idx = Some(i);
                        break; // oldest ready hit wins immediately
                    }
                }
                Some(_) => {
                    if pre_idx.is_none() && rank.earliest(CommandKind::Pre, &e.coord) <= now {
                        pre_idx = Some(i);
                    }
                }
                None => {
                    if act_idx.is_none() && rank.earliest(CommandKind::Act, &e.coord) <= now {
                        act_idx = Some(i);
                    }
                }
            }
        }

        if let Some(i) = hit_idx {
            let mut e = self.queue.remove(i);
            let cmd = match (self.config.page_policy, e.kind) {
                (PagePolicy::Open, _) => column_command(e.kind),
                (PagePolicy::Closed, RequestKind::Read) => CommandKind::Rda,
                (PagePolicy::Closed, RequestKind::Write) => CommandKind::Wra,
            };
            self.ranks[e.coord.rank].issue(cmd, &e.coord, now);
            self.observe_cmd(now, cmd, &e.coord);
            if self.config.page_policy == PagePolicy::Closed {
                self.stats.precharges += 1; // implicit auto-precharge
            }
            if !e.classified {
                self.stats.row_hits += 1;
                e.classified = true;
            }
            self.stats.bank_group_accesses[e.coord.bank_group % MAX_BANK_GROUPS] += 1;
            let t = &self.config.timing;
            self.stats.busy_cycles += t.tbl;
            let finish = match e.kind {
                RequestKind::Read => {
                    self.stats.reads += 1;
                    now + t.cl + t.tbl
                }
                RequestKind::Write => {
                    self.stats.writes += 1;
                    now + t.cwl + t.tbl
                }
            };
            return Some(Completion { id: e.id, finish_cycle: finish, enqueued: e.arrived });
        }
        if let Some(i) = act_idx {
            let (coord, classified) = {
                let e = &mut self.queue[i];
                let c = e.coord;
                let was = e.classified;
                e.classified = true;
                (c, was)
            };
            self.ranks[coord.rank].issue(CommandKind::Act, &coord, now);
            self.observe_cmd(now, CommandKind::Act, &coord);
            self.stats.activations += 1;
            if !classified {
                self.stats.row_misses += 1;
            }
            return None;
        }
        if let Some(i) = pre_idx {
            let (coord, classified) = {
                let e = &mut self.queue[i];
                let c = e.coord;
                let was = e.classified;
                e.classified = true;
                (c, was)
            };
            self.ranks[coord.rank].issue(CommandKind::Pre, &coord, now);
            self.observe_cmd(now, CommandKind::Pre, &coord);
            self.stats.precharges += 1;
            if !classified {
                self.stats.row_conflicts += 1;
            }
            return None;
        }
        None
    }
}

fn column_command(kind: RequestKind) -> CommandKind {
    match kind {
        RequestKind::Read => CommandKind::Rd,
        RequestKind::Write => CommandKind::Wr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramConfig, PagePolicy};
    use crate::mapping::AddressMapping;

    fn controller() -> ChannelController {
        ChannelController::new(DramConfig::enmc_single_rank())
    }

    fn coord_of(addr: u64, cfg: &DramConfig) -> Coord {
        AddressMapping::RoRaBaCoBg.decode(addr, &cfg.organization)
    }

    fn run_one(ctrl: &mut ChannelController, id: u64, addr: u64) -> u64 {
        let cfg = ctrl.config;
        assert!(ctrl.enqueue(RequestId(id), RequestKind::Read, coord_of(addr, &cfg), 0));
        let mut now = 0;
        loop {
            if let Some(c) = ctrl.tick(now) {
                return c.finish_cycle;
            }
            now += 1;
            assert!(now < 100_000, "request never completed");
        }
    }

    #[test]
    fn cold_read_latency_is_trcd_plus_cl_plus_burst() {
        let mut ctrl = controller();
        let t = ctrl.config.timing;
        let finish = run_one(&mut ctrl, 1, 0);
        // ACT at 0 → RD at tRCD → data done at tRCD + CL + tBL.
        assert_eq!(finish, t.trcd + t.cl + t.tbl);
        assert_eq!(ctrl.stats().row_misses, 1);
        assert_eq!(ctrl.stats().row_hits, 0);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let mut ctrl = controller();
        run_one(&mut ctrl, 1, 0);
        let cfg = ctrl.config;
        // Same bank + row is 4 bursts away (bank-group-interleaved mapping).
        assert!(ctrl.enqueue(RequestId(2), RequestKind::Read, coord_of(256, &cfg), 0));
        let mut now = ctrl.stats().total_cycles;
        let finish = loop {
            if let Some(c) = ctrl.tick(now) {
                break c.finish_cycle;
            }
            now += 1;
        };
        assert!(finish > 0);
        assert_eq!(ctrl.stats().row_hits, 1);
    }

    #[test]
    fn conflicting_row_forces_precharge() {
        let mut ctrl = controller();
        run_one(&mut ctrl, 1, 0);
        let cfg = ctrl.config;
        // Same bank, different row: skip all banks' interleaved rows.
        let row_stride = cfg.organization.row_bytes() as u64
            * cfg.organization.banks_per_rank() as u64;
        assert!(ctrl.enqueue(RequestId(2), RequestKind::Read, coord_of(row_stride, &cfg), 0));
        let mut now = ctrl.stats().total_cycles;
        loop {
            if ctrl.tick(now).is_some() {
                break;
            }
            now += 1;
            assert!(now < 100_000);
        }
        assert_eq!(ctrl.stats().row_conflicts, 1);
        assert!(ctrl.stats().precharges >= 1);
    }

    #[test]
    fn queue_rejects_when_full() {
        let mut ctrl = controller();
        let cfg = ctrl.config;
        for i in 0..cfg.queue_depth as u64 {
            assert!(ctrl.enqueue(RequestId(i), RequestKind::Read, coord_of(i * 64, &cfg), 0));
        }
        assert_eq!(ctrl.free_slots(), 0);
        assert!(!ctrl.enqueue(RequestId(999), RequestKind::Read, coord_of(0, &cfg), 0));
    }

    #[test]
    fn streaming_reads_are_mostly_hits() {
        let mut ctrl = controller();
        let cfg = ctrl.config;
        let n = 256u64;
        let mut enq = 0u64;
        let mut done = 0;
        let mut now = 0u64;
        while done < n {
            while enq < n && ctrl.enqueue(RequestId(enq), RequestKind::Read, coord_of(enq * 64, &cfg), now)
            {
                enq += 1;
            }
            if ctrl.tick(now).is_some() {
                done += 1;
            }
            now += 1;
            assert!(now < 1_000_000, "stalled");
        }
        let s = ctrl.stats();
        assert!(s.row_hit_rate() > 0.9, "hit rate {}", s.row_hit_rate());
        // Streaming should keep the bus well utilized.
        assert!(s.bus_utilization() > 0.5, "util {}", s.bus_utilization());
    }

    #[test]
    fn same_address_requests_never_reorder() {
        // Write X, then read X, then a row-hit read elsewhere: the read of
        // X must complete after the write even though FR-FCFS would prefer
        // any ready hit.
        let mut ctrl = controller();
        let cfg = ctrl.config;
        assert!(ctrl.enqueue(RequestId(1), RequestKind::Write, coord_of(0, &cfg), 0));
        assert!(ctrl.enqueue(RequestId(2), RequestKind::Read, coord_of(0, &cfg), 0));
        let mut completions = Vec::new();
        for now in 0..5000 {
            if let Some(c) = ctrl.tick(now) {
                completions.push(c.id);
            }
            if completions.len() == 2 {
                break;
            }
        }
        assert_eq!(completions, vec![RequestId(1), RequestId(2)], "write must precede read");
    }

    #[test]
    fn refresh_eventually_issues() {
        let mut ctrl = controller();
        let trefi = ctrl.config.timing.trefi;
        for now in 0..trefi + 1000 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats().refreshes >= 1);
    }

    #[test]
    fn closed_page_auto_precharges() {
        let mut cfg = DramConfig::enmc_single_rank();
        cfg.page_policy = PagePolicy::Closed;
        let mut ctrl = ChannelController::new(cfg);
        run_one(&mut ctrl, 1, 0);
        // The bank must be closed again: a second access to the same row
        // is a miss, not a hit.
        assert!(ctrl.enqueue(RequestId(2), RequestKind::Read, coord_of(256, &cfg), 0));
        let mut now = ctrl.stats().total_cycles;
        loop {
            if ctrl.tick(now).is_some() {
                break;
            }
            now += 1;
            assert!(now < 100_000);
        }
        assert_eq!(ctrl.stats().row_hits, 0);
        assert_eq!(ctrl.stats().row_misses, 2);
        assert!(ctrl.stats().precharges >= 2);
    }

    #[test]
    fn open_page_outperforms_closed_on_streaming() {
        let stream = |policy: PagePolicy| {
            let mut cfg = DramConfig::enmc_single_rank();
            cfg.page_policy = policy;
            let mut ctrl = ChannelController::new(cfg);
            let n = 128u64;
            let mut enq = 0u64;
            let mut done = 0u64;
            let mut now = 0u64;
            while done < n {
                while enq < n
                    && ctrl.enqueue(RequestId(enq), RequestKind::Read, coord_of(enq * 64, &cfg), now)
                {
                    enq += 1;
                }
                if ctrl.tick(now).is_some() {
                    done += 1;
                }
                now += 1;
                assert!(now < 1_000_000);
            }
            now
        };
        let open = stream(PagePolicy::Open);
        let closed = stream(PagePolicy::Closed);
        assert!(open < closed, "open {open} vs closed {closed}");
    }

    #[test]
    fn trace_captures_act_and_rd() {
        let mut ctrl = controller();
        ctrl.enable_trace(1024, 0);
        assert!(ctrl.trace_enabled());
        run_one(&mut ctrl, 1, 0);
        let events = ctrl.take_trace();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"ACT"), "trace {names:?}");
        assert!(names.contains(&"RD"), "trace {names:?}");
        // ACT must precede RD, and timestamps must be ordered.
        let act = events.iter().position(|e| e.name == "ACT").unwrap();
        let rd = events.iter().position(|e| e.name == "RD").unwrap();
        assert!(act < rd);
        assert!(events[act].ts < events[rd].ts);
        // Draining empties the buffer but leaves tracing on.
        assert!(ctrl.take_trace().is_empty());
        assert!(ctrl.trace_enabled());
    }

    #[test]
    fn trace_samples_counter_tracks() {
        let mut ctrl = controller();
        ctrl.enable_trace(4096, 0);
        run_one(&mut ctrl, 1, 0);
        // Open-page policy keeps the accessed row open; tick past the next
        // sample point so a counter sample observes it.
        let done = ctrl.stats().total_cycles;
        for now in done..done + 2 * COUNTER_SAMPLE_INTERVAL {
            ctrl.tick(now);
        }
        let events = ctrl.take_trace();
        let counters: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.phase == enmc_obs::SpanPhase::Counter)
            .collect();
        assert!(!counters.is_empty(), "no counter samples in trace");
        assert!(counters.iter().all(|e| e.tid == TID_COUNTERS));
        assert!(counters.iter().any(|e| e.name == "queue_depth"));
        assert!(counters.iter().any(|e| e.name == "open_rows"));
        // Every sample lands on the stride and carries exactly one value.
        for e in &counters {
            assert_eq!(e.ts % COUNTER_SAMPLE_INTERVAL, 0);
            assert_eq!(e.args.len(), 1);
            assert_eq!(e.args[0].0, "value");
        }
        // An ACT leaves a row open, so some open_rows sample must be > 0.
        assert!(
            counters.iter().any(|e| e.name == "open_rows" && e.args[0].1 > 0),
            "open row never observed"
        );
    }

    #[test]
    fn accesses_are_attributed_to_bank_groups() {
        let mut ctrl = controller();
        let cfg = ctrl.config;
        // The interleaved mapping spreads consecutive lines over bank
        // groups; stream enough lines to touch more than one.
        let n = 32u64;
        let mut enq = 0u64;
        let mut done = 0u64;
        let mut now = 0u64;
        while done < n {
            while enq < n
                && ctrl.enqueue(RequestId(enq), RequestKind::Read, coord_of(enq * 64, &cfg), now)
            {
                enq += 1;
            }
            if ctrl.tick(now).is_some() {
                done += 1;
            }
            now += 1;
            assert!(now < 1_000_000);
        }
        let s = ctrl.stats();
        let total: u64 = s.bank_group_accesses.iter().sum();
        assert_eq!(total, s.reads + s.writes, "bank-group split covers every access");
        assert!(
            s.bank_group_accesses.iter().filter(|&&c| c > 0).count() > 1,
            "interleaving should touch several bank groups: {:?}",
            s.bank_group_accesses
        );
    }

    #[test]
    fn writes_complete_with_cwl() {
        let mut ctrl = controller();
        let cfg = ctrl.config;
        let t = cfg.timing;
        assert!(ctrl.enqueue(RequestId(1), RequestKind::Write, coord_of(0, &cfg), 0));
        let mut now = 0;
        let finish = loop {
            if let Some(c) = ctrl.tick(now) {
                break c.finish_cycle;
            }
            now += 1;
        };
        assert_eq!(finish, t.trcd + t.cwl + t.tbl);
        assert_eq!(ctrl.stats().writes, 1);
    }
}
