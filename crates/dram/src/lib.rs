//! A cycle-level DDR4 DRAM simulator — the substrate the paper obtains from
//! Ramulator (Kim et al., CAL'15).
//!
//! The simulator models the command-level behaviour of a DDR4 memory
//! subsystem at the granularity the paper's evaluation needs:
//!
//! * the **device hierarchy** — channel → rank → bank group → bank, with a
//!   row buffer per bank ([`bank`], [`rank`]);
//! * the **command protocol** — ACT / PRE / PREA / RD / WR / RDA / WRA /
//!   REF with the full DDR4 timing-constraint set (tRCD, tRP, tRAS, tRC,
//!   CL, CWL, tCCD_S/L, tRRD_S/L, tFAW, tWR, tRTP, tWTR, tRFC, tREFI),
//!   parameterized by [`config::Timing`] with the paper's Table 3 values
//!   as the default ([`config::DramConfig::enmc_table3`]);
//! * a **memory controller** per channel — 64-entry request queue,
//!   FR-FCFS scheduling, open-page policy, demand refresh ([`controller`]);
//! * **address mapping** from flat physical addresses to device coordinates
//!   ([`mapping`]);
//! * **statistics and energy counters** — row hits/misses/conflicts, bus
//!   utilization, and an IDD-derived energy model with the
//!   activate/read/write/refresh/background split used by Fig. 14
//!   ([`energy`]);
//! * **command-event tracing** — when enabled via
//!   [`system::DramSystem::enable_trace`], every issued ACT / PRE / RD / WR /
//!   REF becomes an `enmc_obs` trace event (one `pid` per channel, one `tid`
//!   per bank) that the CLI exports as a Chrome/Perfetto trace. Disabled by
//!   default at the cost of a single branch per issued command;
//! * a **conformance subsystem** — a runtime protocol checker that shadows
//!   every issued command and flags DDR4 timing violations ([`checker`]), an
//!   obviously-correct closed-page golden reference model that replays and
//!   cross-checks the controller's command log ([`golden`]), and a
//!   deterministic adversarial traffic fuzzer with reproducer shrinking
//!   ([`fuzz`]). All opt-in: the release path pays one `Option` branch per
//!   issued command.
//!
//! # Example
//!
//! ```
//! use enmc_dram::{DramConfig, DramSystem, MemRequest};
//!
//! let mut sys = DramSystem::new(DramConfig::enmc_table3());
//! let id = sys.enqueue(MemRequest::read(0)).expect("queue has space");
//! let mut done = Vec::new();
//! while done.is_empty() {
//!     sys.tick();
//!     done.extend(sys.drain_completions());
//! }
//! assert_eq!(done[0].id, id);
//! ```

pub mod bank;
pub mod checker;
pub mod command;
pub mod config;
pub mod controller;
pub mod energy;
pub mod fuzz;
pub mod golden;
pub mod mapping;
pub mod rank;
pub mod stats;
pub mod system;

pub use checker::{ProtocolViolation, Rule, TimingChecker};
pub use command::{Command, CommandKind, TimedCommand};
pub use config::{DramConfig, Organization, PagePolicy, Timing};
pub use controller::ChannelController;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use fuzz::{FuzzOutcome, FuzzRequest, InjectedBug, PatternKind, Reproducer};
pub use golden::{golden_closed_page, GoldenOutcome, GoldenRequest, ReplayReport};
pub use mapping::{AddressMapping, Coord};
pub use stats::DramStats;
pub use system::{Completion, DramSystem, MemRequest, RequestId, RequestKind};
