//! Per-rank state: banks plus the constraints that span banks.
//!
//! tRRD (ACT→ACT across banks), tFAW (≤4 ACTs per window), tCCD
//! (column→column, same vs different bank group), the read/write bus
//! turnaround (tWTR / CL-vs-CWL gaps) and refresh are all rank-level.

use crate::bank::{Bank, RowState};
use crate::command::CommandKind;
use crate::config::{Organization, Timing};
use crate::mapping::Coord;
use std::collections::VecDeque;

/// One rank: a set of banks and rank-wide timing state.
#[derive(Debug, Clone)]
pub struct RankState {
    banks: Vec<Bank>,
    org: Organization,
    timing: Timing,
    /// Timestamps of the last four ACTs (for tFAW).
    act_window: VecDeque<u64>,
    /// Earliest next ACT due to tRRD (per last-ACT bank group).
    last_act_cycle: Option<(u64, usize)>,
    /// Earliest next column command due to tCCD (cycle, bank group).
    last_col_cycle: Option<(u64, usize, bool)>, // (cycle, bank_group, was_write)
    /// Cycle at which a scheduled refresh completes (banks blocked).
    refresh_until: u64,
}

impl RankState {
    /// A fresh rank with all banks precharged.
    pub fn new(org: &Organization, timing: &Timing) -> Self {
        RankState {
            banks: (0..org.banks_per_rank()).map(|_| Bank::new()).collect(),
            org: *org,
            timing: *timing,
            act_window: VecDeque::with_capacity(4),
            last_act_cycle: None,
            last_col_cycle: None,
            refresh_until: 0,
        }
    }

    /// Immutable bank access.
    pub fn bank(&self, flat: usize) -> &Bank {
        &self.banks[flat]
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// `true` if every bank is precharged (needed before REF).
    pub fn all_closed(&self) -> bool {
        self.banks.iter().all(|b| b.state() == RowState::Closed)
    }

    /// Earliest cycle at which `cmd` may issue, considering both bank-local
    /// and rank-level constraints. Returns `u64::MAX` if the command is
    /// structurally illegal right now.
    pub fn earliest(&self, kind: CommandKind, coord: &Coord) -> u64 {
        if kind == CommandKind::PreA {
            // PreA must be legal for every open bank simultaneously.
            let mut e = self.refresh_until;
            for b in &self.banks {
                if b.state() != RowState::Closed {
                    e = e.max(b.earliest(CommandKind::Pre));
                }
            }
            return e;
        }
        let flat = coord.flat_bank(&self.org);
        let bank = &self.banks[flat];
        if !bank.permits(kind, coord.row) {
            return u64::MAX;
        }
        let mut earliest = bank.earliest(kind).max(self.refresh_until);
        match kind {
            CommandKind::Act => {
                if let Some((cycle, bg)) = self.last_act_cycle {
                    let trrd = if bg == coord.bank_group {
                        self.timing.trrd_l
                    } else {
                        self.timing.trrd_s
                    };
                    earliest = earliest.max(cycle + trrd);
                }
                if self.act_window.len() == 4 {
                    earliest = earliest.max(self.act_window[0] + self.timing.tfaw);
                }
            }
            k if k.is_column() => {
                if let Some((cycle, bg, was_write)) = self.last_col_cycle {
                    let t = self.timing;
                    let tccd = if bg == coord.bank_group { t.tccd_l } else { t.tccd_s };
                    earliest = earliest.max(cycle + tccd);
                    // Bus turnaround: write→read needs CWL+BL+tWTR; read→write
                    // needs the read burst to clear the bus.
                    if was_write && k.is_read() {
                        earliest = earliest.max(cycle + t.cwl + t.tbl + t.twtr);
                    } else if !was_write && k.is_write() {
                        earliest = earliest.max(cycle + t.cl + t.tbl + 2 - t.cwl);
                    }
                }
            }
            CommandKind::Ref => {
                if !self.all_closed() {
                    return u64::MAX;
                }
                // Every bank must have completed its precharge (tRP) and
                // respect tRC from its last activation.
                for b in &self.banks {
                    earliest = earliest.max(b.earliest(CommandKind::Ref));
                }
            }
            _ => {}
        }
        earliest
    }

    /// Issues `cmd` at `now`, updating all state.
    ///
    /// # Panics
    ///
    /// Debug-asserts legality; the controller must check
    /// [`RankState::earliest`] first.
    pub fn issue(&mut self, kind: CommandKind, coord: &Coord, now: u64) {
        debug_assert!(now >= self.earliest(kind, coord), "{kind:?} issued too early");
        let t = &self.timing.clone();
        let flat = coord.flat_bank(&self.org);
        match kind {
            CommandKind::Act => {
                self.banks[flat].issue(kind, coord.row, now, t);
                if self.act_window.len() == 4 {
                    self.act_window.pop_front();
                }
                self.act_window.push_back(now);
                self.last_act_cycle = Some((now, coord.bank_group));
            }
            CommandKind::PreA => {
                for b in &mut self.banks {
                    if b.state() != RowState::Closed {
                        b.issue(CommandKind::Pre, 0, now, t);
                    }
                }
            }
            CommandKind::Ref => {
                self.refresh_until = now + t.trfc;
                for b in &mut self.banks {
                    b.issue(CommandKind::Ref, 0, now, t);
                }
            }
            k if k.is_column() => {
                self.banks[flat].issue(kind, coord.row, now, t);
                self.last_col_cycle = Some((now, coord.bank_group, k.is_write()));
            }
            _ => {
                self.banks[flat].issue(kind, coord.row, now, t);
            }
        }
    }

    /// The open row of a bank, if any.
    pub fn open_row(&self, flat_bank: usize) -> Option<usize> {
        match self.banks[flat_bank].state() {
            RowState::Open(r) => Some(r),
            RowState::Closed => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn setup() -> (RankState, Timing, Organization) {
        let cfg = DramConfig::enmc_table3();
        (RankState::new(&cfg.organization, &cfg.timing), cfg.timing, cfg.organization)
    }

    fn coord(bg: usize, bank: usize, row: usize, col: usize) -> Coord {
        Coord { channel: 0, rank: 0, bank_group: bg, bank, row, column: col }
    }

    #[test]
    fn trrd_spacing_between_acts() {
        let (mut r, t, _) = setup();
        let c0 = coord(0, 0, 1, 0);
        let c1 = coord(1, 0, 2, 0);
        r.issue(CommandKind::Act, &c0, 0);
        let e = r.earliest(CommandKind::Act, &c1);
        assert_eq!(e, t.trrd_s); // different bank group
        let c2 = coord(0, 1, 3, 0);
        let e = r.earliest(CommandKind::Act, &c2);
        assert_eq!(e, t.trrd_l); // same bank group
    }

    #[test]
    fn tfaw_limits_four_acts() {
        let (mut r, t, _) = setup();
        let mut now = 0;
        for i in 0..4 {
            let c = coord(i % 4, i / 4, 1, 0);
            now = r.earliest(CommandKind::Act, &c).max(now);
            r.issue(CommandKind::Act, &c, now);
        }
        // Fifth ACT to a fresh bank must wait for the tFAW window.
        let c = coord(0, 1, 1, 0);
        let e = r.earliest(CommandKind::Act, &c);
        assert!(e >= t.tfaw, "fifth ACT at {e}, tFAW {}", t.tfaw);
    }

    #[test]
    fn tccd_spacing_between_reads() {
        let (mut r, t, _) = setup();
        let c = coord(0, 0, 1, 0);
        r.issue(CommandKind::Act, &c, 0);
        r.issue(CommandKind::Rd, &c, t.trcd);
        let same_bg = r.earliest(CommandKind::Rd, &coord(0, 0, 1, 1));
        assert_eq!(same_bg, t.trcd + t.tccd_l);
    }

    #[test]
    fn write_to_read_turnaround() {
        let (mut r, t, _) = setup();
        let c = coord(0, 0, 1, 0);
        r.issue(CommandKind::Act, &c, 0);
        r.issue(CommandKind::Wr, &c, t.trcd);
        let e = r.earliest(CommandKind::Rd, &coord(0, 0, 1, 1));
        assert!(e >= t.trcd + t.cwl + t.tbl + t.twtr);
    }

    #[test]
    fn refresh_requires_all_banks_closed() {
        let (mut r, t, _) = setup();
        let c = coord(0, 0, 1, 0);
        r.issue(CommandKind::Act, &c, 0);
        assert_eq!(r.earliest(CommandKind::Ref, &c), u64::MAX);
        r.issue(CommandKind::Pre, &c, t.tras);
        assert!(r.all_closed());
        let e = r.earliest(CommandKind::Ref, &c);
        assert!(e < u64::MAX);
    }

    #[test]
    fn refresh_blocks_activations() {
        let (mut r, t, _) = setup();
        let c = coord(0, 0, 1, 0);
        r.issue(CommandKind::Ref, &c, 0);
        let e = r.earliest(CommandKind::Act, &c);
        assert!(e >= t.trfc);
    }

    #[test]
    fn prea_closes_everything() {
        let (mut r, t, _) = setup();
        r.issue(CommandKind::Act, &coord(0, 0, 1, 0), 0);
        r.issue(CommandKind::Act, &coord(1, 0, 2, 0), t.trrd_s);
        let now = t.tras + t.trrd_s;
        r.issue(CommandKind::PreA, &coord(0, 0, 0, 0), now);
        assert!(r.all_closed());
    }

    #[test]
    fn open_row_reports_state() {
        let (mut r, _t, org) = setup();
        let c = coord(2, 1, 42, 0);
        assert_eq!(r.open_row(c.flat_bank(&org)), None);
        r.issue(CommandKind::Act, &c, 0);
        assert_eq!(r.open_row(c.flat_bank(&org)), Some(42));
    }
}
