//! DRAM organization and timing configuration (paper Table 3).
//!
//! All timing parameters are expressed in *memory-clock cycles* of the I/O
//! bus (DDR4-2400 → 1200 MHz clock, 0.833 ns per cycle, two transfers per
//! cycle). The paper gives CL-tRCD-tRP = 16-16-16, tRC = 55, tCCD = 4,
//! tRRD = 4, tFAW = 6; the remaining constraints are filled in from the
//! DDR4-2400 JEDEC speed bin.

/// Device organization: the shape of the memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Organization {
    /// Independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Column addresses per row (per device; BL8 bursts cover 8 at once).
    pub columns: usize,
    /// Bytes transferred per column access (x8 chips × 8 devices × BL8 /
    /// prefetch — one 64-byte burst for a standard DIMM).
    pub access_bytes: usize,
}

impl Organization {
    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Bursts (64-byte accesses) per row.
    pub fn bursts_per_row(&self) -> usize {
        self.columns / 8
    }

    /// Row-buffer size in bytes across the rank (one device row × devices).
    pub fn row_bytes(&self) -> usize {
        self.bursts_per_row() * self.access_bytes
    }

    /// Capacity of one channel in bytes.
    pub fn channel_bytes(&self) -> u64 {
        self.ranks as u64 * self.rank_bytes()
    }

    /// Capacity of one rank in bytes.
    pub fn rank_bytes(&self) -> u64 {
        self.banks_per_rank() as u64
            * self.rows as u64
            * (self.columns as u64 / 8)
            * self.access_bytes as u64
    }

    /// Capacity of the whole subsystem in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.channels as u64 * self.channel_bytes()
    }
}

/// DDR timing constraints, in memory-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Timing {
    /// Clock period in picoseconds (DDR4-2400: 833 ps).
    pub tck_ps: u64,
    /// CAS latency (read).
    pub cl: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// RAS-to-CAS delay.
    pub trcd: u64,
    /// Row precharge time.
    pub trp: u64,
    /// Row active time (min).
    pub tras: u64,
    /// Row cycle time (ACT→ACT same bank).
    pub trc: u64,
    /// Column-to-column, same bank group.
    pub tccd_l: u64,
    /// Column-to-column, different bank group.
    pub tccd_s: u64,
    /// ACT-to-ACT, same bank group.
    pub trrd_l: u64,
    /// ACT-to-ACT, different bank group.
    pub trrd_s: u64,
    /// Four-activation window.
    pub tfaw: u64,
    /// Write recovery time.
    pub twr: u64,
    /// Read-to-precharge.
    pub trtp: u64,
    /// Write-to-read turnaround.
    pub twtr: u64,
    /// Burst length in cycles (BL8 → 4).
    pub tbl: u64,
    /// Refresh cycle time.
    pub trfc: u64,
    /// Refresh interval.
    pub trefi: u64,
}

impl Timing {
    /// DDR4-2400 timing with the paper's Table 3 overrides.
    pub fn ddr4_2400_table3() -> Self {
        Timing {
            tck_ps: 833,
            cl: 16,
            cwl: 12,
            trcd: 16,
            trp: 16,
            tras: 39, // tRC - tRP
            trc: 55,
            tccd_l: 6,
            tccd_s: 4, // paper: tCCD = 4
            trrd_l: 6,
            trrd_s: 4, // paper: tRRD = 4
            tfaw: 26,  // JEDEC DDR4-2400 x8 (paper lists 6, which would be
            // non-binding since 4·tRRD_S = 16 > 6; we keep the
            // JEDEC-binding value so the window actually constrains)
            twr: 18,
            trtp: 9,
            twtr: 9,
            tbl: 4,
            trfc: 420,    // 350 ns for 8 Gb devices
            trefi: 9363,  // 7.8 µs
        }
    }

    /// JEDEC DDR4-2666 speed bin (the CPU baseline's DIMMs, §6.2).
    pub fn ddr4_2666() -> Self {
        Timing {
            tck_ps: 750,
            cl: 18,
            cwl: 14,
            trcd: 18,
            trp: 18,
            tras: 43,
            trc: 61,
            tccd_l: 7,
            tccd_s: 4,
            trrd_l: 7,
            trrd_s: 4,
            tfaw: 28,
            twr: 20,
            trtp: 10,
            twtr: 10,
            tbl: 4,
            trfc: 467,   // 350 ns at 1333 MHz
            trefi: 10400, // 7.8 µs
        }
    }

    /// Nanoseconds for `cycles` memory-clock cycles.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.tck_ps as f64 / 1000.0
    }

    /// Peak bandwidth per channel in bytes/second (64-bit bus, DDR).
    pub fn peak_channel_bandwidth(&self) -> f64 {
        // 8 bytes per transfer, 2 transfers per clock.
        16.0e12 / self.tck_ps as f64
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PagePolicy {
    /// Leave rows open after column accesses (exploits streaming locality;
    /// the ENMC default).
    Open,
    /// Auto-precharge every column access (RDA/WRA) — lower conflict
    /// latency for random traffic, no hit reuse.
    Closed,
}

/// Complete DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DramConfig {
    /// Subsystem shape.
    pub organization: Organization,
    /// Timing constraints.
    pub timing: Timing,
    /// Request-queue depth per channel (Table 3: 64).
    pub queue_depth: usize,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// The paper's Table 3 configuration: DDR4-2400, 8 channels, 8 ranks
    /// per channel, 8 Gb ×8 chips, 64 GB and 21.3 GB/s per channel.
    pub fn enmc_table3() -> Self {
        DramConfig {
            organization: Organization {
                channels: 8,
                ranks: 8,
                bank_groups: 4,
                banks_per_group: 4,
                // 8 Gb x8 device: 65536 rows × 1024 column addresses × 16
                // banks; a rank of 8 such devices delivers 64 B per BL8
                // burst and an 8 KiB effective row buffer.
                rows: 65_536,
                columns: 1024,
                access_bytes: 64,
            },
            timing: Timing::ddr4_2400_table3(),
            queue_depth: 64,
            page_policy: PagePolicy::Open,
        }
    }

    /// A single-rank slice of the Table 3 system — the timing domain one
    /// on-DIMM ENMC unit sees (its simplified DRAM controller talks only to
    /// its own rank's chips).
    pub fn enmc_single_rank() -> Self {
        let mut cfg = Self::enmc_table3();
        cfg.organization.channels = 1;
        cfg.organization.ranks = 1;
        cfg
    }

    /// The CPU baseline's memory system: 6 channels of DDR4-2666 with two
    /// ranks each (Xeon 8280, §6.2).
    pub fn cpu_baseline() -> Self {
        let mut cfg = Self::enmc_table3();
        cfg.organization.channels = 6;
        cfg.organization.ranks = 2;
        cfg.timing = Timing::ddr4_2666();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_channel_capacity_is_64_gb() {
        let cfg = DramConfig::enmc_table3();
        let gb = cfg.organization.channel_bytes() as f64 / (1u64 << 30) as f64;
        assert_eq!(gb, 64.0);
    }

    #[test]
    fn table3_channel_bandwidth_is_21_3_gbs() {
        let cfg = DramConfig::enmc_table3();
        let gbs = cfg.timing.peak_channel_bandwidth() / 1e9;
        assert!((19.0..20.0).contains(&gbs), "{gbs}");
        // Paper quotes 21.3 GB/s per channel using GB = 1e9 vs GiB
        // conventions; 2400 MT/s × 8 B = 19.2e9 B/s = 19.2 GB/s decimal.
        // Either way the configuration matches DDR4-2400.
    }

    #[test]
    fn total_capacity_512_gb() {
        let cfg = DramConfig::enmc_table3();
        let gb = cfg.organization.total_bytes() as f64 / (1u64 << 30) as f64;
        assert_eq!(gb, 512.0);
    }

    #[test]
    fn trc_equals_tras_plus_trp() {
        let t = Timing::ddr4_2400_table3();
        assert_eq!(t.trc, t.tras + t.trp);
    }

    #[test]
    fn cycles_to_ns_ddr4_2400() {
        let t = Timing::ddr4_2400_table3();
        assert!((t.cycles_to_ns(55) - 45.8).abs() < 0.1); // tRC ≈ 45.8 ns
    }

    #[test]
    fn single_rank_slice_shape() {
        let cfg = DramConfig::enmc_single_rank();
        assert_eq!(cfg.organization.channels, 1);
        assert_eq!(cfg.organization.ranks, 1);
        let gb = cfg.organization.channel_bytes() as f64 / (1u64 << 30) as f64;
        assert_eq!(gb, 8.0); // one rank of 8 Gb×8 chips = 8 GiB
    }

    #[test]
    fn ddr4_2666_bin_is_faster_in_time() {
        let t24 = Timing::ddr4_2400_table3();
        let t26 = Timing::ddr4_2666();
        // Higher data rate: more bandwidth...
        assert!(t26.peak_channel_bandwidth() > t24.peak_channel_bandwidth());
        // ...with roughly the same absolute latencies (more cycles, each
        // shorter): tRCD within 15% in nanoseconds.
        let ns24 = t24.cycles_to_ns(t24.trcd);
        let ns26 = t26.cycles_to_ns(t26.trcd);
        assert!((ns24 - ns26).abs() / ns24 < 0.15, "{ns24} vs {ns26}");
    }

    #[test]
    fn cpu_baseline_uses_2666_bin() {
        let cfg = DramConfig::cpu_baseline();
        assert_eq!(cfg.timing.tck_ps, 750);
        assert_eq!(cfg.organization.channels, 6);
        // 6 channels × 21.3 GB/s ≈ 128 GB/s, the paper's quoted number.
        let total = cfg.timing.peak_channel_bandwidth() * 6.0 / 1e9;
        assert!((120.0..135.0).contains(&total), "{total} GB/s");
    }

    #[test]
    fn row_buffer_size_is_8_kb() {
        let cfg = DramConfig::enmc_table3();
        assert_eq!(cfg.organization.row_bytes(), 8192);
    }
}
