//! Online serving simulator for the ENMC accelerator.
//!
//! The rest of the workspace answers "how fast is one batch?"; this crate
//! answers the question the ROADMAP north star actually poses — what
//! happens when *traffic* hits the accelerator: requests arrive over
//! time, queue, get batched, and miss or meet deadlines. It is a
//! deterministic discrete-event simulator in DRAM-clock cycle time,
//! layered on the cycle-level [`enmc_arch::system::SystemModel`]:
//!
//! 1. [`arrival`] — seeded arrival-process generators (Poisson, bursty
//!    MMPP-2, diurnal ramp, replayed trace) producing timestamped
//!    requests with per-request deadlines.
//! 2. [`sim`] — a dynamic batcher (max-batch-size + max-linger) feeding
//!    batches into service lanes whose service times come from a
//!    calibration pass over the rank-sharded simulator, plus an
//!    admission/backpressure controller that sheds load and steps the
//!    screener down through configured [`tier::DegradeTier`]s.
//! 3. [`hist`] — log-bucketed latency histograms for p50/p90/p99/p999
//!    tail reporting.
//! 4. [`offload`] — the admission-time [`OffloadPlan`] hook an external
//!    planner (enmc-tune) installs to route each `(tier, batch)` point
//!    to NMP or the CPU roofline at its pre-planned cost.
//!
//! # Determinism contract
//!
//! Everything is a function of the configuration and its seeds: arrivals
//! come from a [`arrival::SplitMix64`] stream, service times from the
//! thread-invariant sharded simulator, and the event loop itself is
//! single-threaded cycle arithmetic. Host wall-clock time never enters
//! any output, so a serving report is byte-identical for any
//! `ENMC_THREADS` — worker counts only change how fast the calibration
//! pass runs.

pub mod arrival;
pub mod hist;
pub mod offload;
pub mod sim;
pub mod tier;

pub use arrival::ArrivalProcess;
pub use hist::LatencyHistogram;
pub use offload::OffloadPlan;
pub use sim::{
    calibrate_service_table, simulate, simulate_with_cost, BatchRecord, RequestRecord,
    ServeConfig, ServeOutcome, ServiceTable,
};
pub use tier::{parse_tiers, DegradeTier};
