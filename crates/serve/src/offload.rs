//! Admission-time offload plan: the hook an external planner (the
//! `enmc-tune` crate's NMPO-style per-query planner) installs into a
//! serving scenario.
//!
//! The serving loop itself never decides *where* a batch executes — it
//! charges whatever the calibrated service table says. An [`OffloadPlan`]
//! overrides that table with per-`(tier, batch)` service times that
//! already reflect the cheaper of CPU-roofline and NMP execution, and
//! tags each point with the executor the planner chose so the event loop
//! can count admission-time decisions. Keeping the plan a plain data
//! table preserves the determinism contract: the outcome stays a pure
//! function of the configuration, byte-identical at any worker count.

/// Per-`(tier, batch)` executor choice and service time installed by an
/// offload planner. Both tables are indexed `[tier][batch_size - 1]` and
/// must match the scenario's ladder depth and `batch_max`.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadPlan {
    /// Planned service cycles: the cheaper of the calibrated NMP time
    /// and the CPU roofline, per point. Every entry is at least 1.
    pub cycles: Vec<Vec<u64>>,
    /// `true` where the planner kept NMP execution, `false` where the
    /// CPU roofline won.
    pub nmp: Vec<Vec<bool>>,
}

impl OffloadPlan {
    /// Validates the plan against a scenario's ladder depth and maximum
    /// batch size.
    ///
    /// # Panics
    ///
    /// Panics when either table is not exactly `tiers × batch_max`.
    pub fn check_shape(&self, tiers: usize, batch_max: usize) {
        assert_eq!(self.cycles.len(), tiers, "offload plan must cover every tier");
        assert_eq!(self.nmp.len(), tiers, "offload plan must tag every tier");
        for (c, n) in self.cycles.iter().zip(&self.nmp) {
            assert_eq!(c.len(), batch_max, "offload plan must cover batch 1..=batch_max");
            assert_eq!(n.len(), batch_max, "offload plan must tag batch 1..=batch_max");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_shaped_plan_checks() {
        let plan =
            OffloadPlan { cycles: vec![vec![10, 20]; 3], nmp: vec![vec![true, false]; 3] };
        plan.check_shape(3, 2);
    }

    #[test]
    #[should_panic(expected = "every tier")]
    fn tier_mismatch_panics() {
        let plan = OffloadPlan { cycles: vec![vec![10]; 2], nmp: vec![vec![true]; 2] };
        plan.check_shape(3, 1);
    }

    #[test]
    #[should_panic(expected = "batch 1..=batch_max")]
    fn batch_mismatch_panics() {
        let plan = OffloadPlan { cycles: vec![vec![10]; 2], nmp: vec![vec![true]; 2] };
        plan.check_shape(2, 4);
    }
}
