//! The discrete-event serving loop: queue → batcher → service lanes,
//! with SLO-aware admission control and screener degradation.
//!
//! # Time model
//!
//! Everything runs in DRAM-clock cycles. A **calibration pass** first
//! runs the rank-sharded cycle simulator ([`SystemModel::run_sharded`])
//! once per `(degrade tier, batch size)` point, recording the straggler
//! rank's cycle count as that point's service time. The event loop then
//! never touches the cycle simulator again: dispatching a batch of size
//! `b` at tier `t` occupies a lane for `service[t][b-1]` cycles. The
//! calibration is the only parallelizable phase, and it is
//! thread-invariant by the PR-2 determinism contract — so the entire
//! serving outcome is a pure function of the configuration.
//!
//! # Event loop
//!
//! Open-loop arrivals enter a FIFO queue (or are **shed** when the queue
//! is at `shed_queue_depth`). A batch dispatches onto the earliest free
//! lane as soon as one is free and either `batch_max` requests are
//! waiting or the oldest has waited `linger_cycles`. At each dispatch the
//! controller steps the degrade tier: down when the queue is deeper than
//! `degrade_queue_depth` or the oldest waiter's deadline would be missed
//! at the current tier, up (hysteresis) when the queue has drained to
//! `upgrade_queue_depth`.

use std::collections::VecDeque;

use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_obs::report::RunReport;
use enmc_obs::trace::{TraceBuffer, TraceEvent, TraceSink};
use enmc_obs::MetricsRegistry;
use enmc_par::SimConfig;
use enmc_surrogate::{CostBackend, CostModel, SurrogateViolation};

use crate::arrival::ArrivalProcess;
use crate::hist::{cycle_bounds, LatencyHistogram};
use crate::offload::OffloadPlan;
use crate::tier::DegradeTier;

/// Trace category for serving-layer events.
pub const CAT_SERVE: &str = "serve";
/// Trace pid for the serving layer (one pid: the queue plus its lanes).
pub const PID_SERVE: u32 = 7;
/// Trace tid for queue-level events (arrive/shed/degrade markers).
pub const TID_QUEUE: u32 = 0;
/// Trace tid of batcher lane 0; lane `i` is `TID_LANE0 + i`.
pub const TID_LANE0: u32 = 1;

/// Configuration of one serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The arrival process.
    pub arrival: ArrivalProcess,
    /// Requests to generate (a replayed trace may yield fewer).
    pub requests: usize,
    /// Per-request deadline: arrival cycle + this.
    pub slo_cycles: u64,
    /// Maximum requests per dispatched batch.
    pub batch_max: usize,
    /// Longest a request may wait before the batcher must dispatch.
    pub linger_cycles: u64,
    /// Independent service lanes (parallel batch slots).
    pub lanes: usize,
    /// Degrade ladder, full quality first. Must be non-empty.
    pub tiers: Vec<DegradeTier>,
    /// Step one tier down when the queue is deeper than this at dispatch.
    pub degrade_queue_depth: usize,
    /// Step one tier up when the queue is at most this deep at dispatch.
    pub upgrade_queue_depth: usize,
    /// Shed arrivals once the queue holds this many requests.
    pub shed_queue_depth: usize,
    /// Seed for the arrival stream.
    pub seed: u64,
    /// Admission-time offload plan installed by an external planner
    /// (`None` = serve every point on NMP at calibrated cost).
    pub offload: Option<OffloadPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 0.5 },
            requests: 256,
            slo_cycles: 100_000,
            batch_max: 4,
            linger_cycles: 2_000,
            lanes: 2,
            tiers: Vec::new(),
            degrade_queue_depth: 12,
            upgrade_queue_depth: 3,
            shed_queue_depth: 48,
            seed: 7,
            offload: None,
        }
    }
}

/// One request's life, for invariant checking and latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Arrival cycle.
    pub arrival: u64,
    /// Deadline cycle (`arrival + slo_cycles`).
    pub deadline: u64,
    /// Completion cycle, `None` while queued or when shed.
    pub completion: Option<u64>,
    /// `true` when admission control rejected the request.
    pub shed: bool,
}

/// One dispatched batch, for invariant checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// Dispatch cycle.
    pub start: u64,
    /// Completion cycle (`start` + tier/size service time).
    pub end: u64,
    /// Requests in the batch.
    pub size: usize,
    /// Degrade tier the batch ran at.
    pub tier: usize,
    /// Lane index the batch occupied.
    pub lane: usize,
    /// Arrival cycle of the oldest request in the batch.
    pub oldest_arrival: u64,
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests the arrival process generated.
    pub generated: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Completed requests that met their deadline.
    pub slo_met: u64,
    /// Degrade-tier steps taken, both directions.
    pub degrade_transitions: u64,
    /// Cycle the last batch completed (0 when nothing ran).
    pub makespan_cycles: u64,
    /// Simulated nanoseconds per DRAM cycle (from calibration).
    pub ns_per_cycle: f64,
    /// Deepest the queue ever got.
    pub max_queue_depth: usize,
    /// DDR4 protocol violations observed during calibration runs.
    pub protocol_violations: u64,
    /// Request latencies, log-bucketed.
    pub latency: LatencyHistogram,
    /// Completed requests per tier (`tiers.len()` entries).
    pub per_tier_completed: Vec<u64>,
    /// Batches dispatched per tier.
    pub per_tier_batches: Vec<u64>,
    /// Calibrated service cycles, indexed `[tier][batch_size - 1]`.
    pub service_cycles: Vec<Vec<u64>>,
    /// Per-request life records, in arrival order.
    pub requests: Vec<RequestRecord>,
    /// Per-batch records, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Cost backend that answered the calibration points
    /// (`cycle-accurate` or `surrogate`).
    pub cost_backend: String,
    /// Cycle-accurate anchor simulations run by surrogate fits (0 on the
    /// cycle-accurate backend).
    pub fit_anchors: u64,
    /// Calibration points the audit lottery re-ran cycle-accurately.
    pub audit_points: u64,
    /// Worst bound-normalized relative leaf error over audited points.
    pub audit_max_rel_err: f64,
    /// Dispatched batches the offload plan kept on NMP (0 without a
    /// plan).
    pub offload_nmp: u64,
    /// Dispatched batches the offload plan sent to the CPU roofline (0
    /// without a plan).
    pub offload_cpu: u64,
}

impl ServeOutcome {
    /// Fraction of completed requests that met their deadline (0 when
    /// nothing completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }

    /// Builds the schema-v4 [`RunReport`] for this run.
    ///
    /// Serving reports are **simulation-time only**: phase wall time is
    /// zero, `threads` stays 0 and `speedup` 1.0, because host timing
    /// would break the byte-identical-across-`ENMC_THREADS` contract the
    /// golden fixture and CI rely on.
    pub fn report(
        &self,
        workload: &str,
        cfg: &ServeConfig,
        registry: &MetricsRegistry,
    ) -> RunReport {
        let mut report = RunReport::new("serve-sim", workload, "enmc");
        report.batch = cfg.batch_max as u64;
        report.candidates = cfg.tiers.first().map(|t| t.candidates as u64).unwrap_or(0);
        report.sim_cycles = self.makespan_cycles;
        report.headline_ns = self.makespan_cycles as f64 * self.ns_per_cycle;
        report.push_phase("serve", 0.0, self.makespan_cycles, report.headline_ns);
        report.protocol_violations = self.protocol_violations;
        report.slo_attainment = self.slo_attainment();
        report.p99_ns = self.latency.p99() * self.ns_per_cycle;
        report.shed = self.shed;
        report.degrade_transitions = self.degrade_transitions;
        report.cost_backend = self.cost_backend.clone();
        report.fit_anchors = self.fit_anchors;
        report.audit_points = self.audit_points;
        report.audit_max_rel_err = self.audit_max_rel_err;
        report.offload_nmp = self.offload_nmp;
        report.offload_cpu = self.offload_cpu;
        report.metrics = registry.snapshot();
        report.notes.push(format!(
            "open-loop {} arrivals, seed {}, {} request(s)",
            cfg.arrival.kind(),
            cfg.seed,
            self.generated
        ));
        report.notes.push(format!(
            "service table calibrated over {} tier(s) x batch 1..={}",
            cfg.tiers.len(),
            cfg.batch_max
        ));
        report.notes.push(
            "host wall time excluded: serving reports are simulation-time only".to_string(),
        );
        report
    }
}

/// Label for a tier index, for metric series (ladders deeper than 8 fold
/// into one series).
fn tier_label(t: usize) -> &'static str {
    const NAMES: [&str; 8] = ["0", "1", "2", "3", "4", "5", "6", "7"];
    NAMES.get(t).copied().unwrap_or("8+")
}

/// A calibrated `[tier][batch-1]` service-time table plus the clock
/// scale and protocol-violation count the calibration pass observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceTable {
    /// Service cycles, indexed `[tier][batch_size - 1]`; every entry is
    /// at least 1.
    pub cycles: Vec<Vec<u64>>,
    /// Simulated nanoseconds per DRAM cycle (from the last calibrated
    /// point; identical across points of one system model).
    pub ns_per_cycle: f64,
    /// DDR4 protocol violations observed during calibration runs.
    pub protocol_violations: u64,
}

/// Calibrates the `[tier][batch-1]` service-time table by running every
/// point through the cost model — the rank-sharded cycle simulator on
/// the cycle-accurate backend, pure arithmetic (with seeded audits) on
/// the surrogate backend. `context` prefixes the per-point audit context
/// (`"serve-sim calibration"`, `"fleet-sim calibration (tenant t0)"`, …)
/// so a surrogate violation names the point that produced it.
///
/// This is the single bridge between event-loop time and cycle-simulator
/// time: both `serve-sim` and the fleet simulator fill their tables here,
/// which is what makes a 1-node, 1-tenant fleet bit-identical to the
/// single-node simulator.
///
/// # Errors
///
/// Returns the [`SurrogateViolation`] when an audited calibration point
/// misses the declared bound.
pub fn calibrate_service_table(
    sys: &SystemModel,
    job: &ClassificationJob,
    tiers: &[DegradeTier],
    batch_max: usize,
    sim: &SimConfig,
    cost: &mut CostModel,
    context: &str,
) -> Result<ServiceTable, SurrogateViolation> {
    let mut table = vec![vec![0u64; batch_max]; tiers.len()];
    let mut ns_per_cycle = 0.0;
    let mut violations = 0u64;
    for (t, tier) in tiers.iter().enumerate() {
        let tier_job = tier.apply(job);
        for b in 1..=batch_max {
            let context = format!("{context} (tier {t}, batch {b})");
            let run = cost.run_sharded_enmc(
                sys,
                &tier_job.with_load(b, tier.candidates),
                sim,
                &context,
            )?;
            let r = run.result.rank_report.expect("ENMC runs are cycle-simulated");
            table[t][b - 1] = r.dram_cycles.max(1);
            violations += r.protocol_violations;
            if r.dram_cycles > 0 {
                ns_per_cycle = r.ns / r.dram_cycles as f64;
            }
        }
    }
    Ok(ServiceTable { cycles: table, ns_per_cycle, protocol_violations: violations })
}

/// [`calibrate_service_table`] over a [`ServeConfig`]'s ladder.
fn calibrate(
    sys: &SystemModel,
    job: &ClassificationJob,
    cfg: &ServeConfig,
    sim: &SimConfig,
    cost: &mut CostModel,
) -> Result<(Vec<Vec<u64>>, f64, u64), SurrogateViolation> {
    let t = calibrate_service_table(
        sys,
        job,
        &cfg.tiers,
        cfg.batch_max,
        sim,
        cost,
        "serve-sim calibration",
    )?;
    Ok((t.cycles, t.ns_per_cycle, t.protocol_violations))
}

/// Runs one serving scenario.
///
/// `sim` controls only how the calibration pass executes (worker count,
/// protocol checking); the outcome is bit-identical for any worker
/// count. Serving metrics are recorded into `registry` under the
/// `serve.*` prefix; pass `trace` to collect queue/lane spans.
///
/// # Panics
///
/// Panics when `cfg.tiers` is empty or `cfg.batch_max` is zero.
pub fn simulate(
    sys: &SystemModel,
    job: &ClassificationJob,
    cfg: &ServeConfig,
    sim: &SimConfig,
    registry: &mut MetricsRegistry,
    trace: Option<&mut TraceBuffer>,
) -> ServeOutcome {
    let mut cost = CostModel::new(CostBackend::CycleAccurate, cfg.seed);
    simulate_with_cost(sys, job, cfg, sim, registry, trace, &mut cost)
        .expect("cycle-accurate backend cannot violate an audit")
}

/// [`simulate`] with an explicit cost backend: the calibration pass runs
/// through `cost`, so a surrogate backend fills the service table in pure
/// arithmetic (auditing a seeded fraction cycle-accurately) while the
/// event loop is untouched. The outcome is bit-identical to [`simulate`]
/// on the cycle-accurate backend, and identical across audit rates on
/// the surrogate backend (audits never change predictions).
///
/// # Errors
///
/// Returns the [`SurrogateViolation`] when an audited calibration point
/// misses the declared bound.
///
/// # Panics
///
/// Panics when `cfg.tiers` is empty or `cfg.batch_max` is zero.
pub fn simulate_with_cost(
    sys: &SystemModel,
    job: &ClassificationJob,
    cfg: &ServeConfig,
    sim: &SimConfig,
    registry: &mut MetricsRegistry,
    mut trace: Option<&mut TraceBuffer>,
    cost: &mut CostModel,
) -> Result<ServeOutcome, SurrogateViolation> {
    assert!(!cfg.tiers.is_empty(), "serve config needs at least one degrade tier");
    assert!(cfg.batch_max > 0, "batch_max must be positive");
    let (service, ns_per_cycle, protocol_violations) = calibrate(sys, job, cfg, sim, cost)?;
    // An installed offload plan overrides the calibrated table with the
    // planner's per-point choice of executor.
    let service = match &cfg.offload {
        Some(plan) => {
            plan.check_shape(cfg.tiers.len(), cfg.batch_max);
            plan.cycles.clone()
        }
        None => service,
    };

    let arrivals = cfg.arrival.generate(cfg.requests, cfg.seed);
    let mut requests: Vec<RequestRecord> = arrivals
        .iter()
        .map(|&at| RequestRecord {
            arrival: at,
            deadline: at.saturating_add(cfg.slo_cycles),
            completion: None,
            shed: false,
        })
        .collect();

    let lanes_n = cfg.lanes.max(1);
    let mut lane_free = vec![0u64; lanes_n];
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut latency = LatencyHistogram::new();
    let mut per_tier_completed = vec![0u64; cfg.tiers.len()];
    let mut per_tier_batches = vec![0u64; cfg.tiers.len()];
    let (mut admitted, mut shed, mut completed, mut slo_met) = (0u64, 0u64, 0u64, 0u64);
    let (mut offload_nmp, mut offload_cpu) = (0u64, 0u64);
    let mut degrade_transitions = 0u64;
    let mut max_queue_depth = 0usize;
    let mut tier = 0usize;
    let mut now = 0u64;
    let mut next_arrival = 0usize;
    let n = requests.len();

    loop {
        // Admit (or shed) every arrival due by `now`, in arrival order.
        while next_arrival < n && requests[next_arrival].arrival <= now {
            let id = next_arrival;
            next_arrival += 1;
            if pending.len() >= cfg.shed_queue_depth.max(1) {
                requests[id].shed = true;
                shed += 1;
                if let Some(tb) = trace.as_deref_mut() {
                    tb.record(
                        TraceEvent::instant("shed", CAT_SERVE, requests[id].arrival, PID_SERVE, TID_QUEUE)
                            .with_arg("request", id as u64),
                    );
                }
            } else {
                pending.push_back(id);
                admitted += 1;
                max_queue_depth = max_queue_depth.max(pending.len());
            }
        }

        // Dispatch while a lane is free and a batch is ready.
        loop {
            let Some(&front) = pending.front() else { break };
            let Some(lane) = lane_free.iter().position(|&f| f <= now) else { break };
            let full = pending.len() >= cfg.batch_max;
            let lingered = now >= requests[front].arrival.saturating_add(cfg.linger_cycles);
            if !(full || lingered) {
                break;
            }

            // Controller: one tier step per dispatch, with hysteresis.
            let depth = pending.len();
            let size = depth.min(cfg.batch_max);
            let predicted_end = now.saturating_add(service[tier][size - 1]);
            if (depth > cfg.degrade_queue_depth || predicted_end > requests[front].deadline)
                && tier + 1 < cfg.tiers.len()
            {
                tier += 1;
                degrade_transitions += 1;
                if let Some(tb) = trace.as_deref_mut() {
                    tb.record(
                        TraceEvent::instant("degrade", CAT_SERVE, now, PID_SERVE, TID_QUEUE)
                            .with_arg("tier", tier as u64),
                    );
                }
            } else if depth <= cfg.upgrade_queue_depth && tier > 0 {
                tier -= 1;
                degrade_transitions += 1;
                if let Some(tb) = trace.as_deref_mut() {
                    tb.record(
                        TraceEvent::instant("upgrade", CAT_SERVE, now, PID_SERVE, TID_QUEUE)
                            .with_arg("tier", tier as u64),
                    );
                }
            }

            let svc = service[tier][size - 1];
            let end = now.saturating_add(svc);
            let oldest_arrival = requests[front].arrival;
            for _ in 0..size {
                let id = pending.pop_front().expect("size <= queue depth");
                requests[id].completion = Some(end);
                let lat = end - requests[id].arrival;
                latency.observe(lat);
                completed += 1;
                per_tier_completed[tier] += 1;
                if end <= requests[id].deadline {
                    slo_met += 1;
                }
            }
            lane_free[lane] = end;
            per_tier_batches[tier] += 1;
            if let Some(plan) = &cfg.offload {
                if plan.nmp[tier][size - 1] {
                    offload_nmp += 1;
                } else {
                    offload_cpu += 1;
                }
            }
            batches.push(BatchRecord { start: now, end, size, tier, lane, oldest_arrival });
            if let Some(tb) = trace.as_deref_mut() {
                let tid = TID_LANE0 + lane as u32;
                tb.record(
                    TraceEvent::begin("batch", CAT_SERVE, now, PID_SERVE, tid)
                        .with_arg("size", size as u64)
                        .with_arg("tier", tier as u64),
                );
                tb.record(TraceEvent::end("batch", CAT_SERVE, end, PID_SERVE, tid));
            }
        }

        // Advance to the next event: an arrival, or the moment the oldest
        // waiter can actually dispatch (its linger expiry and a free lane).
        let mut next = u64::MAX;
        if next_arrival < n {
            next = requests[next_arrival].arrival;
        }
        if let Some(&front) = pending.front() {
            let earliest_lane = lane_free.iter().copied().min().expect("at least one lane");
            let readiness = if pending.len() >= cfg.batch_max {
                now
            } else {
                requests[front].arrival.saturating_add(cfg.linger_cycles)
            };
            next = next.min(readiness.max(earliest_lane).max(now + 1));
        }
        if next == u64::MAX {
            break;
        }
        debug_assert!(next > now, "event time must advance");
        now = next;
    }

    let makespan_cycles = batches.iter().map(|b| b.end).max().unwrap_or(0);

    // Metrics: recorded once, after the loop, so the hot path stays pure.
    registry.counter_add("serve.generated", &[], n as u64);
    registry.counter_add("serve.admitted", &[], admitted);
    registry.counter_add("serve.completed", &[], completed);
    registry.counter_add("serve.shed", &[], shed);
    registry.counter_add("serve.slo_met", &[], slo_met);
    registry.counter_add("serve.batches", &[], batches.len() as u64);
    registry.counter_add("serve.degrade_transitions", &[], degrade_transitions);
    registry.gauge_set("serve.queue_depth_max", &[], max_queue_depth as f64);
    registry.gauge_set("serve.tier_final", &[], tier as f64);
    for (t, (&done, &b)) in per_tier_completed.iter().zip(&per_tier_batches).enumerate() {
        registry.counter_add("serve.tier_completed", &[("tier", tier_label(t))], done);
        registry.counter_add("serve.tier_batches", &[("tier", tier_label(t))], b);
    }
    let bounds = cycle_bounds();
    for r in &requests {
        if let Some(end) = r.completion {
            registry.observe_with("serve.latency_cycles", &[], &bounds, (end - r.arrival) as f64);
        }
    }

    let stats = cost.stats();
    Ok(ServeOutcome {
        generated: n as u64,
        admitted,
        completed,
        shed,
        slo_met,
        degrade_transitions,
        makespan_cycles,
        ns_per_cycle,
        max_queue_depth,
        protocol_violations,
        latency,
        per_tier_completed,
        per_tier_batches,
        service_cycles: service,
        requests,
        batches,
        cost_backend: cost.backend().name().to_string(),
        fit_anchors: stats.fit_anchors,
        audit_points: stats.audited,
        audit_max_rel_err: stats.max_rel_err,
        offload_nmp,
        offload_cpu,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::default_tiers;

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 0.05 },
            requests: 48,
            slo_cycles: 400_000,
            batch_max: 3,
            linger_cycles: 5_000,
            lanes: 2,
            tiers: default_tiers(&small_job()),
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn conservation_and_makespan() {
        let sys = SystemModel::table3();
        let mut reg = MetricsRegistry::new();
        let out = simulate(
            &sys,
            &small_job(),
            &small_cfg(),
            &SimConfig::sequential(),
            &mut reg,
            None,
        );
        assert_eq!(out.generated, 48);
        assert_eq!(out.admitted + out.shed, out.generated);
        assert_eq!(out.completed, out.admitted, "open queue drains completely");
        assert_eq!(out.latency.count(), out.completed);
        assert_eq!(out.per_tier_completed.iter().sum::<u64>(), out.completed);
        assert!(out.makespan_cycles > 0);
        assert!(out.ns_per_cycle > 0.0);
        assert_eq!(reg.counter_value("serve.completed", &[]), out.completed);
    }

    #[test]
    fn service_table_is_monotone_enough_and_tiers_cheaper() {
        let sys = SystemModel::table3();
        let mut reg = MetricsRegistry::new();
        let out = simulate(
            &sys,
            &small_job(),
            &small_cfg(),
            &SimConfig::sequential(),
            &mut reg,
            None,
        );
        // Bigger batches never get cheaper in total time.
        for row in &out.service_cycles {
            assert!(row.windows(2).all(|w| w[1] >= w[0]), "batch scaling: {row:?}");
        }
        // A degraded tier is never slower than full quality at batch 1.
        let full = out.service_cycles[0][0];
        let degraded = *out.service_cycles.last().unwrap().first().unwrap();
        assert!(degraded <= full, "degraded {degraded} vs full {full}");
    }

    #[test]
    fn outcome_is_identical_across_worker_counts() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = small_cfg();
        let mut reg1 = MetricsRegistry::new();
        let seq = simulate(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg1, None);
        let mut reg4 = MetricsRegistry::new();
        let par = simulate(&sys, &job, &cfg, &SimConfig::with_threads(4), &mut reg4, None);
        assert_eq!(seq, par);
        assert_eq!(reg1.snapshot(), reg4.snapshot());
        let r1 = seq.report("test", &cfg, &reg1);
        let r4 = par.report("test", &cfg, &reg4);
        assert_eq!(r1.to_json(), r4.to_json());
    }

    #[test]
    fn overload_sheds_and_degrades() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = ServeConfig {
            arrival: ArrivalProcess::Burst {
                calm_rate: 0.05,
                burst_rate: 50.0,
                calm_cycles: 20_000.0,
                burst_cycles: 10_000.0,
            },
            requests: 200,
            slo_cycles: 1_500,
            batch_max: 4,
            linger_cycles: 300,
            lanes: 1,
            tiers: default_tiers(&job),
            degrade_queue_depth: 4,
            upgrade_queue_depth: 1,
            shed_queue_depth: 12,
            seed: 3,
            ..Default::default()
        };
        let mut reg = MetricsRegistry::new();
        let out = simulate(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg, None);
        assert!(out.shed > 0, "burst overload must shed");
        assert!(out.degrade_transitions > 0, "burst overload must degrade");
        assert!(out.per_tier_completed[1..].iter().sum::<u64>() > 0, "degraded tiers served");
    }

    #[test]
    fn report_is_consistent_schema_v4() {
        let sys = SystemModel::table3();
        let cfg = small_cfg();
        let mut reg = MetricsRegistry::new();
        let out = simulate(&sys, &small_job(), &cfg, &SimConfig::sequential(), &mut reg, None);
        let report = out.report("synthetic", &cfg, &reg);
        assert_eq!(report.schema_version, enmc_obs::report::SCHEMA_VERSION);
        assert!(report.is_consistent());
        assert_eq!(report.command, "serve-sim");
        assert!(report.slo_attainment > 0.0);
        assert_eq!(report.shed, out.shed);
        assert_eq!(report.threads, 0, "serving reports carry no host threading");
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn trace_spans_pair_up_per_lane() {
        let sys = SystemModel::table3();
        let cfg = small_cfg();
        let mut reg = MetricsRegistry::new();
        let mut tb = TraceBuffer::unbounded();
        let out =
            simulate(&sys, &small_job(), &cfg, &SimConfig::sequential(), &mut reg, Some(&mut tb));
        let events = tb.drain();
        let begins = events.iter().filter(|e| e.name == "batch").count();
        assert_eq!(begins as u64 / 2, out.batches.len() as u64);
        assert!(events.iter().all(|e| e.pid == PID_SERVE));
        let chrome = enmc_obs::trace::export_chrome(&events, out.ns_per_cycle);
        enmc_obs::trace::validate_chrome(&chrome).unwrap();
    }
}
