//! Seeded arrival-process generators.
//!
//! Every process maps `(config, seed)` to a sorted list of arrival
//! timestamps in DRAM-clock cycles — no wall clock anywhere, so the same
//! seed replays the same traffic forever. Rates are expressed in
//! **requests per kilocycle** (1000 DRAM cycles ≈ 0.75 µs at DDR4-2666),
//! which keeps realistic loads in the 0.01–10 range.

/// A tiny, auditable 64-bit generator (Steele et al.'s SplitMix64).
///
/// The vendored `rand` stub is good enough for tests, but the serving
/// simulator's arrivals are part of the *output contract* (golden
/// fixtures replay them byte-for-byte), so the generator is pinned here
/// in ~10 lines rather than behind a dependency whose stream could drift.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `(0, 1]` — never zero, so `ln` is always finite.
    pub fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponential draw with the given mean (in cycles), floored to
    /// whole cycles. Zero-cycle gaps are allowed: bursty traffic really
    /// does land several requests on one cycle.
    pub fn next_exp_cycles(&mut self, mean_cycles: f64) -> u64 {
        (-self.next_unit().ln() * mean_cycles) as u64
    }
}

/// How request timestamps are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (requests per kilocycle).
    Poisson {
        /// Mean arrival rate, requests per 1000 cycles.
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process: calm periods at
    /// `calm_rate` interleaved with bursts at `burst_rate`, the dwell
    /// time in each state exponential with the given means.
    Burst {
        /// Rate in the calm state, requests per 1000 cycles.
        calm_rate: f64,
        /// Rate in the burst state, requests per 1000 cycles.
        burst_rate: f64,
        /// Mean calm-state dwell, cycles.
        calm_cycles: f64,
        /// Mean burst-state dwell, cycles.
        burst_cycles: f64,
    },
    /// A diurnal ramp: the rate sweeps linearly from `trough_rate` up to
    /// `peak_rate` and back once per `period_cycles` (a triangle wave —
    /// no trigonometry, so the stream is reproducible to the bit).
    Diurnal {
        /// Rate at the trough, requests per 1000 cycles.
        trough_rate: f64,
        /// Rate at the peak, requests per 1000 cycles.
        peak_rate: f64,
        /// Cycles per full trough→peak→trough sweep.
        period_cycles: u64,
    },
    /// Replay of an explicit timestamp list (e.g. from a recorded trace).
    Trace {
        /// Arrival cycles; sorted on generation.
        at: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// The CLI-facing name of the process kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Burst { .. } => "burst",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::Trace { .. } => "trace",
        }
    }

    /// Generates `count` arrival cycles from `seed`, sorted ascending.
    ///
    /// A replayed trace ignores the seed and yields at most its own
    /// length. Non-positive rates yield no arrivals rather than spinning.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::with_capacity(count);
        match self {
            ArrivalProcess::Poisson { rate } => {
                if *rate <= 0.0 {
                    return out;
                }
                let mean_gap = 1000.0 / rate;
                let mut t = 0u64;
                for _ in 0..count {
                    t = t.saturating_add(rng.next_exp_cycles(mean_gap));
                    out.push(t);
                }
            }
            ArrivalProcess::Burst { calm_rate, burst_rate, calm_cycles, burst_cycles } => {
                if *calm_rate <= 0.0 && *burst_rate <= 0.0 {
                    return out;
                }
                let mut t = 0u64;
                let mut in_burst = false;
                // End of the current state's dwell.
                let mut switch_at = rng.next_exp_cycles(*calm_cycles);
                while out.len() < count {
                    let rate = if in_burst { *burst_rate } else { *calm_rate };
                    let next = if rate > 0.0 {
                        t.saturating_add(rng.next_exp_cycles(1000.0 / rate))
                    } else {
                        u64::MAX
                    };
                    if next <= switch_at {
                        t = next;
                        out.push(t);
                    } else {
                        t = switch_at;
                        in_burst = !in_burst;
                        let dwell = if in_burst { *burst_cycles } else { *calm_cycles };
                        switch_at = t.saturating_add(rng.next_exp_cycles(dwell).max(1));
                    }
                }
            }
            ArrivalProcess::Diurnal { trough_rate, peak_rate, period_cycles } => {
                let peak = peak_rate.max(*trough_rate);
                if peak <= 0.0 {
                    return out;
                }
                // Thinning (Lewis–Shedler): propose at the peak rate,
                // accept with probability rate(t)/peak.
                let period = (*period_cycles).max(2);
                let mean_gap = 1000.0 / peak;
                let mut t = 0u64;
                while out.len() < count {
                    t = t.saturating_add(rng.next_exp_cycles(mean_gap));
                    let phase = t % period;
                    // Triangle wave in [0, 1]: up the first half, down the
                    // second.
                    let tri = if phase * 2 < period {
                        (phase * 2) as f64 / period as f64
                    } else {
                        2.0 - (phase * 2) as f64 / period as f64
                    };
                    let rate = trough_rate + (peak - trough_rate) * tri;
                    if rng.next_unit() * peak <= rate {
                        out.push(t);
                    }
                }
            }
            ArrivalProcess::Trace { at } => {
                out = at.iter().copied().take(count).collect();
                out.sort_unstable();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let p = ArrivalProcess::Poisson { rate: 0.8 };
        assert_eq!(p.generate(256, 42), p.generate(256, 42));
        assert_ne!(p.generate(256, 42), p.generate(256, 43));
    }

    #[test]
    fn arrivals_are_sorted_and_counted() {
        let procs = [
            ArrivalProcess::Poisson { rate: 1.0 },
            ArrivalProcess::Burst {
                calm_rate: 0.2,
                burst_rate: 4.0,
                calm_cycles: 50_000.0,
                burst_cycles: 10_000.0,
            },
            ArrivalProcess::Diurnal { trough_rate: 0.1, peak_rate: 2.0, period_cycles: 100_000 },
        ];
        for p in &procs {
            let a = p.generate(500, 7);
            assert_eq!(a.len(), 500, "{}", p.kind());
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{} unsorted", p.kind());
        }
    }

    #[test]
    fn poisson_rate_is_approximately_honored() {
        let p = ArrivalProcess::Poisson { rate: 2.0 }; // 2 per kilocycle
        let a = p.generate(4000, 1);
        let span = *a.last().unwrap() as f64;
        let observed = 4000.0 / (span / 1000.0);
        assert!((observed - 2.0).abs() < 0.2, "observed rate {observed}");
    }

    #[test]
    fn burst_process_has_heavier_clumps_than_poisson() {
        let calm = ArrivalProcess::Poisson { rate: 0.5 };
        let burst = ArrivalProcess::Burst {
            calm_rate: 0.1,
            burst_rate: 8.0,
            calm_cycles: 80_000.0,
            burst_cycles: 8_000.0,
        };
        let min_gap_share = |a: &[u64]| {
            let short =
                a.windows(2).filter(|w| w[1] - w[0] < 200).count();
            short as f64 / (a.len() - 1) as f64
        };
        let a = calm.generate(2000, 9);
        let b = burst.generate(2000, 9);
        assert!(min_gap_share(&b) > min_gap_share(&a), "bursts should clump");
    }

    #[test]
    fn trace_replay_sorts_and_truncates() {
        let p = ArrivalProcess::Trace { at: vec![30, 10, 20, 40] };
        assert_eq!(p.generate(3, 99), vec![10, 20, 30]);
        assert_eq!(p.generate(10, 99), vec![10, 20, 30, 40]);
    }

    #[test]
    fn degenerate_rates_do_not_spin() {
        assert!(ArrivalProcess::Poisson { rate: 0.0 }.generate(10, 1).is_empty());
        assert!(
            ArrivalProcess::Diurnal { trough_rate: 0.0, peak_rate: 0.0, period_cycles: 10 }
                .generate(10, 1)
                .is_empty()
        );
    }
}
