//! Screener degrade tiers: the accuracy-for-latency dial.
//!
//! ENMC's screening stage already trades accuracy for work — fewer exact
//! candidates `K` and a coarser screening level both shrink the
//! per-batch service time. A serving deployment can therefore *degrade
//! gracefully* under load instead of shedding: the admission controller
//! steps down through an ordered list of [`DegradeTier`]s, each strictly
//! no more accurate (and no slower) than the one before it.

use enmc_arch::system::ClassificationJob;

/// One point on the accuracy↔latency dial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeTier {
    /// Exact candidates per query (`K`); fewer = faster, less accurate.
    pub candidates: usize,
    /// Screening-level shift: the screener's reduced dimension is halved
    /// this many times (`k >> shift`), modelling a coarser screening pass.
    pub screen_shift: u32,
}

impl DegradeTier {
    /// The job this tier's service time should be calibrated against:
    /// `job` with the tier's candidate count and screening level applied
    /// (batch size untouched).
    pub fn apply(&self, job: &ClassificationJob) -> ClassificationJob {
        let mut j = job.with_load(job.batch, self.candidates);
        j.reduced = (job.reduced >> self.screen_shift).max(1);
        j
    }
}

/// Parses a `--degrade-tiers` list: comma-separated `K:S` pairs, e.g.
/// `1650:0,824:1,412:2` — `K` exact candidates at screening shift `S`,
/// ordered from full quality downwards.
///
/// # Errors
///
/// Returns a flag-worthy message when the list is empty, a pair is
/// malformed, `K` is zero, `S` exceeds 8, or a later tier has *more*
/// candidates than an earlier one (stepping "down" must never add work).
pub fn parse_tiers(raw: &str) -> Result<Vec<DegradeTier>, String> {
    let mut tiers = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        let (k, s) = part
            .split_once(':')
            .ok_or_else(|| format!("--degrade-tiers entry '{part}' is not K:S"))?;
        let candidates: usize = k
            .trim()
            .parse()
            .map_err(|_| format!("--degrade-tiers candidates '{k}' is not a positive integer"))?;
        if candidates == 0 {
            return Err("--degrade-tiers candidates must be positive".to_string());
        }
        let screen_shift: u32 = s
            .trim()
            .parse()
            .map_err(|_| format!("--degrade-tiers shift '{s}' is not a small integer"))?;
        if screen_shift > 8 {
            return Err(format!("--degrade-tiers shift {screen_shift} exceeds 8"));
        }
        tiers.push(DegradeTier { candidates, screen_shift });
    }
    if tiers.is_empty() {
        return Err("--degrade-tiers needs at least one K:S entry".to_string());
    }
    for w in tiers.windows(2) {
        if w[1].candidates > w[0].candidates {
            return Err(format!(
                "--degrade-tiers must be ordered from full quality down: {} > {}",
                w[1].candidates, w[0].candidates
            ));
        }
    }
    Ok(tiers)
}

/// The default three-tier ladder for a job: full quality, half the
/// candidates at one screening shift, a quarter at two.
pub fn default_tiers(job: &ClassificationJob) -> Vec<DegradeTier> {
    let k = job.candidates.max(4);
    vec![
        DegradeTier { candidates: k, screen_shift: 0 },
        DegradeTier { candidates: (k / 2).max(1), screen_shift: 1 },
        DegradeTier { candidates: (k / 4).max(1), screen_shift: 2 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> ClassificationJob {
        ClassificationJob { categories: 4096, hidden: 128, reduced: 32, batch: 1, candidates: 200 }
    }

    #[test]
    fn parse_round_trips_a_ladder() {
        let tiers = parse_tiers("200:0, 100:1 ,50:2").unwrap();
        assert_eq!(
            tiers,
            vec![
                DegradeTier { candidates: 200, screen_shift: 0 },
                DegradeTier { candidates: 100, screen_shift: 1 },
                DegradeTier { candidates: 50, screen_shift: 2 },
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_lists() {
        assert!(parse_tiers("").is_err());
        assert!(parse_tiers("200").is_err());
        assert!(parse_tiers("0:0").is_err());
        assert!(parse_tiers("10:9").is_err());
        assert!(parse_tiers("100:0,200:1").is_err(), "tiers must not gain candidates");
        assert!(parse_tiers("a:b").is_err());
    }

    #[test]
    fn apply_scales_candidates_and_screening() {
        let t = DegradeTier { candidates: 50, screen_shift: 2 };
        let j = t.apply(&job());
        assert_eq!(j.candidates, 50);
        assert_eq!(j.reduced, 8);
        assert_eq!(j.categories, 4096);
        // The shift saturates at a one-dimensional screener.
        let deep = DegradeTier { candidates: 1, screen_shift: 8 };
        assert_eq!(deep.apply(&job()).reduced, 1);
    }

    #[test]
    fn default_ladder_is_parseable_and_ordered() {
        let tiers = default_tiers(&job());
        assert_eq!(tiers.len(), 3);
        assert!(tiers.windows(2).all(|w| w[1].candidates <= w[0].candidates));
        assert_eq!(tiers[0].candidates, 200);
    }
}
