//! Log-bucketed latency histograms for tail reporting.
//!
//! Request latencies span several orders of magnitude under load, so the
//! buckets are geometric: four per octave (ratio 2^(1/4) ≈ 1.19), from 1
//! cycle up past 2^30 — a worst-case quantile error under 19%, constant
//! memory, and exact mergeability. The multipliers are hard-coded
//! constants so bucket edges never depend on the platform's `powf`.

use enmc_obs::metrics::Histogram;

/// Quarter-octave multipliers: 2^(0/4), 2^(1/4), 2^(2/4), 2^(3/4).
const QUARTER_OCTAVE: [f64; 4] = [1.0, 1.189_207_115_002_721, std::f64::consts::SQRT_2, 1.681_792_830_507_429];

/// Octaves covered by [`cycle_bounds`]; the top bucket edge is 2^30
/// cycles (~0.8 s of DRAM time), far beyond any sane request latency.
const OCTAVES: usize = 31;

/// The shared bucket-bound ladder for latency-in-cycles histograms.
pub fn cycle_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(OCTAVES * QUARTER_OCTAVE.len());
    for octave in 0..OCTAVES {
        let base = (1u64 << octave) as f64;
        for m in QUARTER_OCTAVE {
            bounds.push(base * m);
        }
    }
    bounds
}

/// A latency histogram over [`cycle_bounds`] with tail-quantile helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    inner: Histogram,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty latency histogram.
    pub fn new() -> Self {
        LatencyHistogram { inner: Histogram::with_bounds(&cycle_bounds()) }
    }

    /// Records one request latency in cycles.
    pub fn observe(&mut self, cycles: u64) {
        self.inner.observe(cycles as f64);
    }

    /// Total latencies recorded.
    pub fn count(&self) -> u64 {
        self.inner.count
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Median latency (bucket upper bound), cycles.
    pub fn p50(&self) -> f64 {
        self.inner.quantile(0.50)
    }

    /// 90th-percentile latency (bucket upper bound), cycles.
    pub fn p90(&self) -> f64 {
        self.inner.quantile(0.90)
    }

    /// 99th-percentile latency (bucket upper bound), cycles.
    pub fn p99(&self) -> f64 {
        self.inner.quantile(0.99)
    }

    /// 99.9th-percentile latency (bucket upper bound), cycles.
    pub fn p999(&self) -> f64 {
        self.inner.quantile(0.999)
    }

    /// Merges another latency histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.inner.merge(&other.inner);
    }

    /// The underlying bucketed histogram.
    pub fn inner(&self) -> &Histogram {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_ascending_geometric() {
        let b = cycle_bounds();
        assert_eq!(b.len(), OCTAVES * 4);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // Ratio between adjacent bounds is always 2^(1/4).
        for w in b.windows(2) {
            let r = w[1] / w[0];
            assert!((r - 2f64.powf(0.25)).abs() < 1e-9, "ratio {r}");
        }
    }

    #[test]
    fn quantiles_track_the_tail() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe(1000);
        }
        h.observe(1_000_000);
        assert_eq!(h.count(), 100);
        assert!(h.p50() >= 1000.0 && h.p50() < 1400.0, "p50 {}", h.p50());
        assert!(h.p99() < 2000.0, "p99 {}", h.p99());
        assert!(h.p999() >= 1_000_000.0, "p999 {}", h.p999());
        // A quarter-octave bucket never overstates by more than ~19%.
        assert!(h.p999() <= 1_000_000.0 * 1.19, "p999 {}", h.p999());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.observe(10);
        b.observe(20);
        b.observe(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn empty_histogram_reports_zero_for_every_quantile() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [h.p50(), h.p90(), h.p99(), h.p999()] {
            assert_eq!(q, 0.0);
        }
    }

    #[test]
    fn single_sample_lands_in_its_bucket_at_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.observe(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1000.0);
        // With one sample, every quantile is that sample's bucket bound:
        // at least the value, overstating by at most one quarter-octave.
        for q in [h.p50(), h.p90(), h.p99(), h.p999()] {
            assert!((1000.0..1000.0 * 1.19).contains(&q), "quantile {q}");
        }
    }

    #[test]
    fn observations_beyond_the_ladder_saturate_at_the_top_bound() {
        let mut h = LatencyHistogram::new();
        // Far past the 2^30-cycle top edge: lands in the overflow bucket.
        h.observe(u64::MAX);
        let top = *cycle_bounds().last().unwrap();
        assert_eq!(h.p50(), top);
        assert_eq!(h.p999(), top);
        // The mean still uses the exact sum, not the clamped bound.
        assert!(h.mean() > top);
    }

    proptest::proptest! {
        /// Quantiles are monotone in `q` and bracketed by the observed
        /// extremes' bucket bounds, for arbitrary latency batches.
        #[test]
        fn quantiles_are_monotone_and_bracketed(
            latencies in proptest::collection::vec(1u64..1_000_000_000, 1..64),
        ) {
            let mut h = LatencyHistogram::new();
            for &c in &latencies {
                h.observe(c);
            }
            let qs = [h.p50(), h.p90(), h.p99(), h.p999()];
            for w in qs.windows(2) {
                proptest::prop_assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
            }
            let lo = *latencies.iter().min().unwrap() as f64;
            let hi = *latencies.iter().max().unwrap() as f64;
            // Bucket upper bounds never understate, and overstate by at
            // most one quarter-octave step.
            proptest::prop_assert!(qs[0] >= lo, "p50 {} below min {lo}", qs[0]);
            proptest::prop_assert!(qs[3] <= hi * 1.19, "p999 {} above max bucket of {hi}", qs[3]);
        }
    }
}
