//! End-to-end performance and scalability (paper Fig. 10 workflow,
//! Fig. 15 evaluation).
//!
//! The host runs the front-end feature extraction; classification runs on
//! the memory system. On a host-only platform the two phases serialize;
//! with an NMP scheme they are decoupled (Fig. 10) and pipeline across
//! batches, so steady-state throughput is set by the slower phase.

use crate::cpu::CpuModel;
use crate::system::{ClassificationJob, Scheme, SystemModel};

/// End-to-end latency/throughput of one scheme on one workload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EndToEnd {
    /// Front-end nanoseconds (host).
    pub front_end_ns: f64,
    /// Classification nanoseconds (scheme-dependent).
    pub classification_ns: f64,
    /// `true` if the two phases pipeline (NMP offload), `false` if they
    /// serialize (host-only).
    pub pipelined: bool,
}

impl EndToEnd {
    /// Effective nanoseconds per batch in steady state.
    pub fn steady_state_ns(&self) -> f64 {
        if self.pipelined {
            self.front_end_ns.max(self.classification_ns)
        } else {
            self.front_end_ns + self.classification_ns
        }
    }
}

/// Runs the end-to-end composition for `job` with a front-end of
/// `front_end_ops` MACs per query.
pub fn end_to_end(
    system: &SystemModel,
    cpu: &CpuModel,
    job: &ClassificationJob,
    front_end_ops: u64,
    scheme: Scheme,
) -> EndToEnd {
    let front_end_ns = cpu.front_end_ns(front_end_ops, job.batch);
    let result = system.run(job, scheme);
    EndToEnd {
        front_end_ns,
        classification_ns: result.ns,
        pipelined: !matches!(scheme, Scheme::CpuFull | Scheme::CpuScreened),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineKind;

    fn job(l: usize) -> ClassificationJob {
        ClassificationJob { categories: l, hidden: 512, reduced: 128, batch: 1, candidates: l / 128 }
    }

    #[test]
    fn pipelined_takes_max_serial_takes_sum() {
        let e = EndToEnd { front_end_ns: 10.0, classification_ns: 30.0, pipelined: true };
        assert_eq!(e.steady_state_ns(), 30.0);
        let s = EndToEnd { front_end_ns: 10.0, classification_ns: 30.0, pipelined: false };
        assert_eq!(s.steady_state_ns(), 40.0);
    }

    #[test]
    fn enmc_advantage_grows_with_categories() {
        // Fig. 15: ENMC's edge over TensorDIMM widens on larger synthetic
        // datasets because it streams without buffering intermediates.
        let sys = SystemModel::table3();
        let cpu = CpuModel::xeon_8280();
        let fe_ops = 32 * 512 * 512u64; // XMLCNN front-end
        let mut advantages = Vec::new();
        for l in [262_144usize, 2_097_152] {
            let j = job(l);
            let enmc = end_to_end(&sys, &cpu, &j, fe_ops, Scheme::Enmc);
            let td = end_to_end(
                &sys,
                &cpu,
                &j,
                fe_ops,
                Scheme::Baseline(BaselineKind::TensorDimm),
            );
            advantages.push(td.steady_state_ns() / enmc.steady_state_ns());
        }
        assert!(
            advantages[1] >= advantages[0] * 0.95,
            "advantage shrank: {advantages:?}"
        );
        assert!(advantages[1] > 1.5, "{advantages:?}");
    }
}
