//! System energy: the three-way split of Fig. 14.
//!
//! *DRAM static* and *DRAM access* come from [`enmc_dram::energy`];
//! *computation & control logic* is computed here from the Table 5
//! component powers: MAC arrays draw power in proportion to their busy
//! time, while buffers and controllers draw power whenever the unit is
//! active.

use crate::unit::UnitReport;
use enmc_dram::energy::{EnergyBreakdown, EnergyModel};

/// Power of each logic component, in milliwatts (Table 5 values for the
/// ENMC configuration; scaled for baselines by the physical model).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogicEnergyModel {
    /// Integer MAC array power when busy.
    pub int_array_mw: f64,
    /// FP32 MAC array power when busy.
    pub fp32_array_mw: f64,
    /// Compute buffers (always on while the unit runs).
    pub compute_buffer_mw: f64,
    /// Control buffers (instruction FIFO, status regs).
    pub control_buffer_mw: f64,
    /// ENMC controller.
    pub controller_mw: f64,
    /// On-DIMM DRAM controller.
    pub dram_ctrl_mw: f64,
    /// SEC-DED encode/decode logic on the weight stream (0 unless the rank
    /// runs with ECC; always-on while the unit is active, like the other
    /// datapath-adjacent logic).
    pub ecc_mw: f64,
    /// DRAM-bus clock period in picoseconds (converts cycles → time).
    pub tck_ps: f64,
}

impl LogicEnergyModel {
    /// Table 5's ENMC power breakdown.
    pub fn enmc_table5() -> Self {
        LogicEnergyModel {
            int_array_mw: 10.4,
            fp32_array_mw: 58.0,
            compute_buffer_mw: 56.8,
            control_buffer_mw: 49.3,
            controller_mw: 32.9,
            dram_ctrl_mw: 78.0,
            ecc_mw: 0.0,
            tck_ps: 833.0,
        }
    }

    /// Returns the model with SEC-DED encode/decode logic drawing `mw`
    /// milliwatts while the unit is active.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not finite or negative.
    pub fn with_ecc(mut self, mw: f64) -> Self {
        assert!(mw.is_finite() && mw >= 0.0, "ECC power must be >= 0, got {mw}");
        self.ecc_mw = mw;
        self
    }

    /// A homogeneous-FP32 baseline drawing `total_mw` across its unit
    /// (Table 4 totals); MAC power scales with busy time, the remainder is
    /// always-on.
    pub fn baseline(total_mw: f64) -> Self {
        // Assume ~25% of the budget is the MAC array (Table 5's ratio).
        LogicEnergyModel {
            int_array_mw: 0.0,
            fp32_array_mw: total_mw * 0.25,
            compute_buffer_mw: total_mw * 0.30,
            control_buffer_mw: 0.0,
            controller_mw: total_mw * 0.15,
            dram_ctrl_mw: total_mw * 0.30,
            ecc_mw: 0.0,
            tck_ps: 833.0,
        }
    }

    /// Computation + control energy for one rank's run, in nanojoules.
    pub fn logic_nj(&self, r: &UnitReport) -> f64 {
        let s = |cycles: u64| cycles as f64 * self.tck_ps * 1e-12; // seconds
        let total = s(r.dram_cycles);
        let always_on_mw = self.compute_buffer_mw
            + self.control_buffer_mw
            + self.controller_mw
            + self.dram_ctrl_mw
            + self.ecc_mw;
        let mj_per_s = 1e-3; // mW × s = mJ
        (self.int_array_mw * s(r.screener_busy)
            + self.fp32_array_mw * s(r.executor_busy + r.sfu_cycles)
            + always_on_mw * total)
            * mj_per_s
            * 1e9 // mJ → nJ... (mW·s = mJ; ×1e6 = nJ)
    }
}

/// The Fig. 14 energy decomposition for one scheme on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SystemEnergy {
    /// Background + refresh DRAM energy, nJ.
    pub dram_static_nj: f64,
    /// Activate + read/write DRAM energy, nJ.
    pub dram_access_nj: f64,
    /// Computation and control logic energy, nJ.
    pub logic_nj: f64,
}

impl SystemEnergy {
    /// Assembles the breakdown for `ranks` symmetric rank-units, each
    /// having produced `per_rank` activity.
    pub fn from_rank(
        per_rank: &UnitReport,
        ranks: usize,
        dram_model: &EnergyModel,
        logic_model: &LogicEnergyModel,
    ) -> Self {
        let dram: EnergyBreakdown = dram_model.breakdown(&per_rank.dram);
        SystemEnergy {
            dram_static_nj: dram.static_nj * ranks as f64,
            dram_access_nj: dram.access_nj * ranks as f64,
            logic_nj: logic_model.logic_nj(per_rank) * ranks as f64,
        }
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dram_static_nj + self.dram_access_nj + self.logic_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_dram::DramStats;

    fn report(cycles: u64, busy: u64) -> UnitReport {
        UnitReport {
            dram_cycles: cycles,
            screener_busy: busy,
            executor_busy: busy / 2,
            sfu_cycles: 0,
            dram: DramStats { reads: 100, activations: 10, total_cycles: cycles, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn logic_energy_grows_with_time_and_activity() {
        let m = LogicEnergyModel::enmc_table5();
        let short = m.logic_nj(&report(1000, 500));
        let long = m.logic_nj(&report(2000, 1000));
        assert!(long > short);
    }

    #[test]
    fn mj_to_nj_conversion_sane() {
        // 1000 cycles at 0.833 ns = 0.833 µs; always-on ≈ 217 mW
        // → 0.833e-6 s × 0.217 W ≈ 1.8e-7 J = 181 nJ.
        let m = LogicEnergyModel::enmc_table5();
        let r = report(1000, 0);
        let nj = m.logic_nj(&r);
        assert!((100.0..300.0).contains(&nj), "{nj} nJ");
    }

    #[test]
    fn system_energy_scales_with_ranks() {
        let m = LogicEnergyModel::enmc_table5();
        let dm = EnergyModel::ddr4_2400_rank(1);
        let r = report(1000, 100);
        let one = SystemEnergy::from_rank(&r, 1, &dm, &m);
        let many = SystemEnergy::from_rank(&r, 64, &dm, &m);
        assert!((many.total_nj() - 64.0 * one.total_nj()).abs() < 1e-6 * many.total_nj());
    }

    #[test]
    fn ecc_logic_power_adds_to_always_on_draw() {
        let plain = LogicEnergyModel::enmc_table5();
        let ecc = plain.with_ecc(12.0);
        let r = report(1000, 100);
        let delta = ecc.logic_nj(&r) - plain.logic_nj(&r);
        // 12 mW over 1000 cycles × 0.833 ns ≈ 10 nJ.
        let expect = 12.0 * 1000.0 * 833.0e-12 * 1e-3 * 1e9;
        assert!((delta - expect).abs() < 1e-6, "{delta} vs {expect}");
    }

    #[test]
    fn baseline_split_sums_to_total() {
        let m = LogicEnergyModel::baseline(300.0);
        let sum = m.fp32_array_mw + m.compute_buffer_mw + m.controller_mw + m.dram_ctrl_mw;
        assert!((sum - 300.0).abs() < 1e-9);
    }
}
