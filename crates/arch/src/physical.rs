//! Analytic area/power model (paper Tables 4 and 5, TSMC 28 nm, 400 MHz).
//!
//! The paper obtains these numbers from RTL synthesis with Design
//! Compiler; we encode the per-component costs the synthesis produced and
//! the compositional rule that reproduces both tables: a design's area and
//! power are the sum of its compute primitives, its SRAM buffers, and its
//! controllers.

/// Area (mm²) and power (mW) of one design or component.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct AreaPower {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl AreaPower {
    /// Component-wise sum.
    pub fn add(&self, other: &AreaPower) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Scales both metrics.
    pub fn scale(&self, s: f64) -> AreaPower {
        AreaPower { area_mm2: self.area_mm2 * s, power_mw: self.power_mw * s }
    }
}

/// Per-primitive synthesis costs at 28 nm / 400 MHz.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhysicalModel {
    /// One INT4 multiply-accumulate lane.
    pub int4_mac: AreaPower,
    /// One FP32 multiply-accumulate lane.
    pub fp32_mac: AreaPower,
    /// One CGRA functional unit (NDA).
    pub cgra_fu: AreaPower,
    /// One systolic processing element (Chameleon).
    pub systolic_pe: AreaPower,
    /// One vector-unit lane (TensorDIMM).
    pub vpu_lane: AreaPower,
    /// One kibibyte of SRAM buffer (register-file based).
    pub buffer_kb: AreaPower,
    /// The ENMC controller block.
    pub enmc_ctrl: AreaPower,
    /// The simplified on-DIMM DRAM controller.
    pub dram_ctrl: AreaPower,
}

impl Default for PhysicalModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

impl PhysicalModel {
    /// Constants back-derived from Tables 4 and 5.
    pub fn tsmc28() -> Self {
        PhysicalModel {
            // Table 5: 128 INT4 MACs = 0.013 mm² / 10.4 mW.
            int4_mac: AreaPower { area_mm2: 0.013 / 128.0, power_mw: 10.4 / 128.0 },
            // Table 5: 16 FP32 MACs = 0.145 mm² / 58.0 mW.
            fp32_mac: AreaPower { area_mm2: 0.145 / 16.0, power_mw: 58.0 / 16.0 },
            // Table 4: NDA = 16 FUs + 1 KB = 0.445 mm² / 293.6 mW.
            cgra_fu: AreaPower {
                area_mm2: (0.445 - 0.061) / 16.0,
                power_mw: (293.6 - 56.8) / 16.0,
            },
            // Table 4: Chameleon = 16 PEs + 1 KB = 0.398 mm² / 249.0 mW.
            systolic_pe: AreaPower {
                area_mm2: (0.398 - 0.061) / 16.0,
                power_mw: (249.0 - 56.8) / 16.0,
            },
            // Table 4: TensorDIMM = 16 lanes + 1.5 KB = 0.457 mm²/303.5 mW.
            vpu_lane: AreaPower {
                area_mm2: (0.457 - 0.061 * 1.5) / 16.0,
                power_mw: (303.5 - 56.8 * 1.5) / 16.0,
            },
            // Table 5: compute buffer (4 × 256 B = 1 KB) = 0.061 / 56.8.
            buffer_kb: AreaPower { area_mm2: 0.061, power_mw: 56.8 },
            // Table 5 rows.
            enmc_ctrl: AreaPower { area_mm2: 0.035, power_mw: 32.9 },
            dram_ctrl: AreaPower { area_mm2: 0.135, power_mw: 78.0 },
        }
    }

    /// The control-buffer block of Table 5 (instruction + threshold
    /// storage), a fixed cost every ENMC-style unit pays regardless of
    /// lane count.
    pub fn control_buffer(&self) -> AreaPower {
        AreaPower { area_mm2: 0.053, power_mw: 49.3 }
    }

    /// The full ENMC unit (Table 5): 128 INT4 + 16 FP32 MACs, 1 KB compute
    /// buffers, ~1 KB control buffers, both controllers.
    pub fn enmc_unit(&self) -> AreaPower {
        self.int4_mac
            .scale(128.0)
            .add(&self.fp32_mac.scale(16.0))
            .add(&self.buffer_kb) // compute buffers: 4 × 256 B
            .add(&self.control_buffer())
            .add(&self.enmc_ctrl)
            .add(&self.dram_ctrl)
    }

    /// NDA's accelerator core (Table 4; control/DRAM controllers excluded
    /// per the table's note).
    pub fn nda_unit(&self) -> AreaPower {
        self.cgra_fu.scale(16.0).add(&self.buffer_kb)
    }

    /// Chameleon's accelerator core (Table 4).
    pub fn chameleon_unit(&self) -> AreaPower {
        self.systolic_pe.scale(16.0).add(&self.buffer_kb)
    }

    /// TensorDIMM's accelerator core (Table 4): 16-lane VPU + 3 × 512 B
    /// queues.
    pub fn tensordimm_unit(&self) -> AreaPower {
        self.vpu_lane.scale(16.0).add(&self.buffer_kb.scale(1.5))
    }

    /// ENMC's row in the Table 4 comparison. The paper quotes the same
    /// 0.442 mm² / 285.4 mW envelope as Table 5's total, so this is the
    /// full unit.
    pub fn enmc_table4(&self) -> AreaPower {
        self.enmc_unit()
    }
}

/// The Table 5 component rows, for printing.
pub fn table5_rows(model: &PhysicalModel) -> Vec<(&'static str, AreaPower)> {
    vec![
        ("INT4 MAC", model.int4_mac.scale(128.0)),
        ("FP32 MAC", model.fp32_mac.scale(16.0)),
        ("Compute Buffer", model.buffer_kb),
        ("Control Buffer", model.control_buffer()),
        ("ENMC Ctrl", model.enmc_ctrl),
        ("DRAM Ctrl", model.dram_ctrl),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_total_reproduced() {
        let m = PhysicalModel::tsmc28();
        let total = m.enmc_unit();
        assert!((total.area_mm2 - 0.442).abs() < 0.005, "area {}", total.area_mm2);
        assert!((total.power_mw - 285.4).abs() < 1.0, "power {}", total.power_mw);
    }

    #[test]
    fn table4_baselines_reproduced() {
        let m = PhysicalModel::tsmc28();
        let nda = m.nda_unit();
        assert!((nda.area_mm2 - 0.445).abs() < 0.005);
        assert!((nda.power_mw - 293.6).abs() < 1.0);
        let ch = m.chameleon_unit();
        assert!((ch.area_mm2 - 0.398).abs() < 0.005);
        assert!((ch.power_mw - 249.0).abs() < 1.0);
        let td = m.tensordimm_unit();
        assert!((td.area_mm2 - 0.457).abs() < 0.005);
        assert!((td.power_mw - 303.5).abs() < 1.0);
    }

    #[test]
    fn table5_rows_reproduced_exactly() {
        // Every Table 5 row must come back bit-exact from the primitive
        // costs: the primitives are defined by dividing these numbers, so
        // multiplying back must invert without drift.
        let m = PhysicalModel::tsmc28();
        let expect = [
            ("INT4 MAC", 0.013, 10.4),
            ("FP32 MAC", 0.145, 58.0),
            ("Compute Buffer", 0.061, 56.8),
            ("Control Buffer", 0.053, 49.3),
            ("ENMC Ctrl", 0.035, 32.9),
            ("DRAM Ctrl", 0.135, 78.0),
        ];
        let rows = table5_rows(&m);
        assert_eq!(rows.len(), expect.len());
        for ((name, ap), (ename, area, power)) in rows.iter().zip(expect) {
            assert_eq!(*name, ename);
            assert!((ap.area_mm2 - area).abs() < 1e-12, "{name} area {}", ap.area_mm2);
            assert!((ap.power_mw - power).abs() < 1e-12, "{name} power {}", ap.power_mw);
        }
        let total = m.enmc_unit();
        let area: f64 = expect.iter().map(|r| r.1).sum();
        let power: f64 = expect.iter().map(|r| r.2).sum();
        assert!((total.area_mm2 - area).abs() < 1e-12, "total area {}", total.area_mm2);
        assert!((total.power_mw - power).abs() < 1e-12, "total power {}", total.power_mw);
    }

    #[test]
    fn table4_rows_reproduced_exactly() {
        // Table 4 quotes each baseline's core at the same numbers the
        // primitives were back-derived from; composition must be exact.
        let m = PhysicalModel::tsmc28();
        let rows = [
            (m.enmc_table4(), 0.442, 285.4),
            (m.nda_unit(), 0.445, 293.6),
            (m.chameleon_unit(), 0.398, 249.0),
            (m.tensordimm_unit(), 0.457, 303.5),
        ];
        for (ap, area, power) in rows {
            assert!((ap.area_mm2 - area).abs() < 1e-12, "area {}", ap.area_mm2);
            assert!((ap.power_mw - power).abs() < 1e-12, "power {}", ap.power_mw);
        }
    }

    #[test]
    fn designs_are_iso_budget() {
        // Table 4's point: all four designs sit in the same area/power
        // envelope (within ~15%).
        let m = PhysicalModel::tsmc28();
        let designs = [m.enmc_table4(), m.nda_unit(), m.chameleon_unit(), m.tensordimm_unit()];
        let max_area = designs.iter().map(|d| d.area_mm2).fold(0.0, f64::max);
        let min_area = designs.iter().map(|d| d.area_mm2).fold(f64::MAX, f64::min);
        assert!(max_area / min_area < 1.2, "{min_area}..{max_area}");
    }

    #[test]
    fn compute_units_fraction_of_table5() {
        // §7.2: "the compute unit takes 40.8% of the total area and 25% of
        // the total power" — INT4 + FP32 arrays offer roughly that share.
        let m = PhysicalModel::tsmc28();
        let compute = m.int4_mac.scale(128.0).add(&m.fp32_mac.scale(16.0));
        let total = m.enmc_unit();
        let area_frac = compute.area_mm2 / total.area_mm2;
        let power_frac = compute.power_mw / total.power_mw;
        assert!((0.30..0.45).contains(&area_frac), "area frac {area_frac}");
        assert!((0.18..0.30).contains(&power_frac), "power frac {power_frac}");
    }

    #[test]
    fn table5_rows_sum_to_total() {
        let m = PhysicalModel::tsmc28();
        let sum = table5_rows(&m)
            .iter()
            .fold(AreaPower::default(), |acc, (_, ap)| acc.add(ap));
        let total = m.enmc_unit();
        assert!((sum.area_mm2 - total.area_mm2).abs() < 1e-9);
        assert!((sum.power_mw - total.power_mw).abs() < 1e-9);
    }
}
