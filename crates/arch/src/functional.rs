//! Functional (data-level) model of the ENMC DIMM.
//!
//! The timing model ([`crate::unit`]) answers *how long* a program takes;
//! this module answers *what it computes*. [`FunctionalDimm`] interprets
//! compiled ENMC instruction streams against a flat rank memory image with
//! the exact arithmetic the hardware performs — INT4 codes multiplied in
//! `i32` accumulators, per-tensor rescale, threshold comparison, Taylor
//! softmax — so the compiler, the ISA codec and the screening algorithm
//! can be validated end-to-end against the pure-software reference
//! implementation in `enmc-screen`.
//!
//! [`HostRuntime`] plays the host's role from paper Fig. 9/10: it packs
//! the tensors into the memory image, issues the compiled screening
//! program, consumes the FILTER output the way the controller's
//! instruction generator does (producing per-candidate FP32 programs), and
//! assembles the final mixed logits.

use enmc_compiler::{estimate_candidate_program, lower_screening, MemoryLayout, TaskDescriptor};
use enmc_isa::{BufferId, Instruction, Program, RegId};
use enmc_tensor::activation::{sigmoid_taylor, softmax_taylor};
use enmc_tensor::packed::PackedInt4;
use enmc_tensor::quant::{QuantMatrix, QuantVector};
use enmc_tensor::Vector;

/// Errors from functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A load/store touched memory outside the image.
    OutOfBounds {
        /// Offending byte address.
        addr: u64,
        /// Image size.
        size: usize,
    },
    /// An instruction used a buffer combination the datapath lacks.
    Unsupported(&'static str),
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access at {addr:#x} outside image of {size} bytes")
            }
            ExecError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The data-level state of one ENMC rank unit.
#[derive(Debug, Clone)]
pub struct FunctionalDimm {
    memory: Vec<u8>,
    regs: [u64; 32],
    buffer_bytes: usize,
    /// Screener weight codes pending consumption (rows may straddle tile
    /// boundaries, so codes queue until `k` of them complete a row).
    pending_codes: Vec<i8>,
    /// Quantized feature codes currently latched (`k` INT4 codes).
    feature_codes: Vec<i8>,
    /// Streaming screening partial sums, one per completed category.
    psum_int: Vec<i32>,
    /// Executor feature vector (full `d`, walked tile by tile).
    feature_fp32: Vec<f32>,
    /// Executor weight tile.
    weight_fp32: Vec<f32>,
    /// Executor accumulator and its walk position within the feature.
    psum_fp32: f32,
    exec_offset: usize,
    /// Output logits (approximate, patched by candidate results).
    output: Vec<f32>,
    /// FILTER survivors.
    index: Vec<u32>,
    /// Data returned by RETURN instructions.
    returned: Vec<Vec<f32>>,
    /// QUERY responses in issue order: the host polls status registers
    /// through these (paper §5.3's QUERY instruction).
    query_log: Vec<(RegId, u64)>,
}

impl FunctionalDimm {
    /// A unit with `mem_bytes` of rank memory and `buffer_bytes` buffers.
    pub fn new(mem_bytes: usize, buffer_bytes: usize) -> Self {
        FunctionalDimm {
            memory: vec![0; mem_bytes],
            regs: [0; 32],
            buffer_bytes,
            pending_codes: Vec::new(),
            feature_codes: Vec::new(),
            psum_int: Vec::new(),
            feature_fp32: Vec::new(),
            weight_fp32: Vec::new(),
            psum_fp32: 0.0,
            exec_offset: 0,
            output: Vec::new(),
            index: Vec::new(),
            returned: Vec::new(),
            query_log: Vec::new(),
        }
    }

    /// Read access to a status register.
    pub fn reg(&self, reg: RegId) -> u64 {
        self.regs[reg.code() as usize]
    }

    /// Writes bytes into the memory image (host-side DMA).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::OutOfBounds`] when the write exceeds the image.
    pub fn write_memory(&mut self, addr: u64, bytes: &[u8]) -> Result<(), ExecError> {
        let end = addr as usize + bytes.len();
        if end > self.memory.len() {
            return Err(ExecError::OutOfBounds { addr, size: self.memory.len() });
        }
        self.memory[addr as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    /// The FILTER survivors of the last screening pass.
    pub fn candidates(&self) -> &[u32] {
        &self.index
    }

    /// Buffers returned by RETURN instructions so far.
    pub fn returned(&self) -> &[Vec<f32>] {
        &self.returned
    }

    /// QUERY responses (register, value) in issue order.
    pub fn query_log(&self) -> &[(RegId, u64)] {
        &self.query_log
    }

    /// Executes a whole program.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run(&mut self, program: &Program) -> Result<(), ExecError> {
        for inst in program {
            self.step(inst)?;
        }
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for out-of-range accesses or datapath
    /// combinations the hardware does not implement.
    pub fn step(&mut self, inst: &Instruction) -> Result<(), ExecError> {
        self.regs[RegId::InstCounter.code() as usize] += 1;
        match *inst {
            Instruction::Init { reg, data } => {
                self.regs[reg.code() as usize] = data;
            }
            Instruction::Query { reg } => {
                let value = self.regs[reg.code() as usize];
                self.query_log.push((reg, value));
            }
            Instruction::Nop | Instruction::Barrier => {}
            Instruction::Ldr { buffer, addr } => self.load(buffer, addr)?,
            Instruction::Str { buffer, addr } => self.store(buffer, addr)?,
            Instruction::MulAddInt4 { .. } => self.mul_add_int4(),
            Instruction::MulAddFp32 { .. } => self.mul_add_fp32()?,
            Instruction::Filter { .. } => self.filter(),
            Instruction::Move { dst: BufferId::Output, src: BufferId::PsumInt4 } => {
                self.move_psum_to_output();
            }
            Instruction::Move { dst: BufferId::Output, src: BufferId::PsumFp32 } => {
                // Finalize one candidate: ADD classifier bias and patch the
                // output slot (the controller pairs this with the index).
                // The caller (HostRuntime) patches by index; here we just
                // leave the value readable via psum.
            }
            Instruction::Move { .. } => {
                return Err(ExecError::Unsupported("MOVE between these buffers"));
            }
            Instruction::AddInt4 { .. }
            | Instruction::MulInt4 { .. }
            | Instruction::AddFp32 { .. }
            | Instruction::MulFp32 { .. } => {
                return Err(ExecError::Unsupported("element-wise ops unused by the compiler"));
            }
            Instruction::Softmax => {
                self.output = softmax_taylor(&self.output);
            }
            Instruction::Sigmoid => {
                for v in &mut self.output {
                    *v = sigmoid_taylor(*v);
                }
            }
            Instruction::Return => {
                self.returned.push(self.output.clone());
                self.regs[RegId::BatchCounter.code() as usize] += 1;
                // Start the next batch item's streaming state.
                self.psum_int.clear();
                self.pending_codes.clear();
                self.output.clear();
            }
            Instruction::Clr => self.clear(),
        }
        Ok(())
    }

    /// The running FP32 accumulator (one candidate's partial dot product).
    pub fn psum_fp32(&self) -> f32 {
        self.psum_fp32
    }

    /// Resets the executor accumulator (controller does this between
    /// candidates).
    pub fn reset_executor(&mut self) {
        self.psum_fp32 = 0.0;
        self.exec_offset = 0;
    }

    /// Clears the per-query streaming state (psums, pending codes,
    /// candidates, output) while keeping memory and registers — what the
    /// controller does between queries when the host skips RETURN/CLR.
    pub fn begin_query(&mut self) {
        self.pending_codes.clear();
        self.feature_codes.clear();
        self.psum_int.clear();
        self.output.clear();
        self.index.clear();
        self.reset_executor();
    }

    fn clear(&mut self) {
        self.regs = [0; 32];
        self.pending_codes.clear();
        self.feature_codes.clear();
        self.psum_int.clear();
        self.feature_fp32.clear();
        self.weight_fp32.clear();
        self.psum_fp32 = 0.0;
        self.exec_offset = 0;
        self.output.clear();
        self.index.clear();
        self.query_log.clear();
    }

    fn slice(&self, addr: u64, len: usize) -> Result<&[u8], ExecError> {
        let end = addr as usize + len;
        if end > self.memory.len() {
            return Err(ExecError::OutOfBounds { addr, size: self.memory.len() });
        }
        Ok(&self.memory[addr as usize..end])
    }

    fn load(&mut self, buffer: BufferId, addr: u64) -> Result<(), ExecError> {
        match buffer {
            BufferId::FeatureInt4 => {
                let k = self.reg(RegId::ReducedDim) as usize;
                let bytes = self.slice(addr, k.div_ceil(2))?.to_vec();
                self.feature_codes = unpack_int4(&bytes, k);
            }
            BufferId::WeightInt4 => {
                let remaining_codes = {
                    let l = self.reg(RegId::VocabSize) as usize;
                    let k = self.reg(RegId::ReducedDim) as usize;
                    let consumed = self.psum_int.len() * k + self.pending_codes.len();
                    (l * k).saturating_sub(consumed)
                };
                let n = (self.buffer_bytes * 2).min(remaining_codes);
                let bytes = self.slice(addr, n.div_ceil(2))?.to_vec();
                self.weight_int4_pending(unpack_int4(&bytes, n));
            }
            BufferId::FeatureFp32 => {
                let d = self.reg(RegId::HiddenDim) as usize;
                let bytes = self.slice(addr, d * 4)?.to_vec();
                self.feature_fp32 = unpack_f32(&bytes);
                self.exec_offset = 0;
            }
            BufferId::WeightFp32 => {
                let d = self.reg(RegId::HiddenDim) as usize;
                let tile_floats = (self.buffer_bytes / 4).min(d - self.exec_offset.min(d));
                let bytes = self.slice(addr, tile_floats * 4)?.to_vec();
                self.weight_fp32 = unpack_f32(&bytes);
            }
            _ => return Err(ExecError::Unsupported("LDR into this buffer")),
        }
        Ok(())
    }

    fn weight_int4_pending(&mut self, codes: Vec<i8>) {
        self.pending_codes.extend(codes);
    }

    fn store(&mut self, buffer: BufferId, addr: u64) -> Result<(), ExecError> {
        match buffer {
            BufferId::Output => {
                let bytes: Vec<u8> =
                    self.output.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.write_memory(addr, &bytes)
            }
            BufferId::PsumFp32 => self.write_memory(addr, &self.psum_fp32.to_le_bytes()),
            _ => Err(ExecError::Unsupported("STR from this buffer")),
        }
    }

    /// Consume pending weight codes: every complete `k`-code row yields one
    /// integer dot product against the latched feature codes.
    fn mul_add_int4(&mut self) {
        let k = self.reg(RegId::ReducedDim) as usize;
        if k == 0 || self.feature_codes.len() < k {
            return;
        }
        while self.pending_codes.len() >= k {
            let row: Vec<i8> = self.pending_codes.drain(..k).collect();
            let acc: i32 = row
                .iter()
                .zip(self.feature_codes.iter())
                .map(|(&w, &x)| w as i32 * x as i32)
                .sum();
            self.psum_int.push(acc);
        }
    }

    /// One executor tile: multiply the weight tile against the matching
    /// feature segment and accumulate.
    fn mul_add_fp32(&mut self) -> Result<(), ExecError> {
        if self.exec_offset + self.weight_fp32.len() > self.feature_fp32.len() {
            return Err(ExecError::Unsupported("executor tile beyond feature length"));
        }
        for (w, x) in self
            .weight_fp32
            .iter()
            .zip(self.feature_fp32[self.exec_offset..].iter())
        {
            self.psum_fp32 += w * x;
        }
        self.exec_offset += self.weight_fp32.len();
        Ok(())
    }

    /// Dequantized approximate logit of category `i` (with bias).
    fn approx_logit(&self, i: usize) -> f32 {
        let w_scale = f32::from_bits(self.reg(RegId::WeightScale) as u32);
        let x_scale = f32::from_bits(self.reg(RegId::FeatureScale) as u32);
        let bias_addr = self.reg(RegId::ScreenBiasAddr) + (i * 4) as u64;
        let bias = self
            .slice(bias_addr, 4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .unwrap_or(0.0);
        // Same operation order as QuantMatrix::matvec_quant (single
        // pre-multiplied rescale, then bias) so results are bit-identical
        // to the software reference.
        self.psum_int[i] as f32 * (w_scale * x_scale) + bias
    }

    /// Comparator array: every approximate logit above the threshold goes
    /// to the index buffer.
    fn filter(&mut self) {
        let threshold = f32::from_bits(self.reg(RegId::Threshold) as u32);
        self.index.clear();
        for i in 0..self.psum_int.len() {
            if self.approx_logit(i) > threshold {
                self.index.push(i as u32);
            }
        }
        self.regs[RegId::CandidateCount.code() as usize] = self.index.len() as u64;
    }

    /// MOVE Output ← PsumInt4: dequantize the streamed psums (+ bias) into
    /// the output buffer as the approximate logits.
    fn move_psum_to_output(&mut self) {
        self.output = (0..self.psum_int.len()).map(|i| self.approx_logit(i)).collect();
    }

    /// Patches a candidate's exact logit into the output (what the
    /// controller does when the Executor finishes a candidate).
    pub fn patch_output(&mut self, index: usize, value: f32) {
        if index < self.output.len() {
            self.output[index] = value;
        }
    }

    /// Current output buffer (approximate + patched logits).
    pub fn output(&self) -> &[f32] {
        &self.output
    }
}

fn unpack_int4(bytes: &[u8], n: usize) -> Vec<i8> {
    PackedInt4::from_bytes(bytes.to_vec(), n).to_codes()
}

/// Packs INT4 codes, two per byte (low nibble first).
pub fn pack_int4(codes: &[i8]) -> Vec<u8> {
    PackedInt4::from_codes(codes).as_bytes().to_vec()
}

fn unpack_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// The host-side runtime of Fig. 9/10: prepares the memory image, runs the
/// compiled screening program, plays the controller's instruction
/// generator for the candidates, and assembles the result.
#[derive(Debug)]
pub struct HostRuntime {
    task: TaskDescriptor,
    layout: MemoryLayout,
    dimm: FunctionalDimm,
    buffer_bytes: usize,
}

impl HostRuntime {
    /// Builds a runtime for `task`, packing the classifier (`w`, `b`), the
    /// quantized screener (`wt`, `bt`) into the memory image.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from the memory writes.
    pub fn new(
        mut task: TaskDescriptor,
        w: &enmc_tensor::Matrix,
        b: &Vector,
        wt: &QuantMatrix,
        bt: &Vector,
        buffer_bytes: usize,
    ) -> Result<Self, ExecError> {
        task.weight_scale_bits = wt.scale().to_bits();
        let layout = MemoryLayout::for_task(&task);
        let mut dimm = FunctionalDimm::new(layout.end as usize, buffer_bytes);
        // Pack W̃ codes row-major.
        let mut codes = Vec::with_capacity(task.categories * task.reduced);
        for r in 0..wt.rows() {
            codes.extend_from_slice(wt.row(r));
        }
        dimm.write_memory(layout.screen_weights, &pack_int4(&codes))?;
        // Screening bias.
        let bt_bytes: Vec<u8> = bt.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
        dimm.write_memory(layout.screen_bias, &bt_bytes)?;
        // Full classifier rows (+ bias appended, matching classifier_bytes).
        let w_bytes: Vec<u8> = w.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
        dimm.write_memory(layout.classifier, &w_bytes)?;
        let b_bytes: Vec<u8> = b.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
        dimm.write_memory(layout.classifier + w_bytes.len() as u64, &b_bytes)?;
        Ok(HostRuntime { task, layout, dimm, buffer_bytes })
    }

    /// Classifies one query end-to-end on the functional DIMM: writes the
    /// quantized projected features, runs the compiled screening program
    /// (stopping before the activation), generates and runs the candidate
    /// programs, and returns `(mixed logits, candidate indices)`.
    ///
    /// `ph_quant` is the quantized projection `Q(P h)` and `h` the raw
    /// hidden vector (for the FP32 executor).
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`].
    pub fn classify(
        &mut self,
        ph_quant: &QuantVector,
        h: &Vector,
        threshold: f32,
    ) -> Result<(Vec<f32>, Vec<usize>), ExecError> {
        let mut task = self.task.clone();
        task.threshold_bits = threshold.to_bits();
        task.feature_scale_bits = ph_quant.scale().to_bits();
        task.batch = 1;
        self.dimm.begin_query();

        // Host DMA: quantized features + FP32 features.
        self.dimm
            .write_memory(self.layout.features, &pack_int4(ph_quant.codes()))?;
        let h_bytes: Vec<u8> = h.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
        let h_addr = self.layout.features + 64; // after the packed codes (k ≤ 128 ⇒ ≤ 64 B)
        self.dimm.write_memory(h_addr, &h_bytes)?;

        // Run the screening program up to (not including) the activation;
        // the host wants raw mixed logits here.
        let program = lower_screening(&task, &self.layout, self.buffer_bytes)
            .map_err(|_| ExecError::Unsupported("compile failure"))?;
        for inst in program.iter() {
            match inst {
                Instruction::Softmax | Instruction::Sigmoid | Instruction::Return
                | Instruction::Clr => break,
                _ => self.dimm.step(inst)?,
            }
        }
        self.dimm.move_psum_to_output();
        let candidates: Vec<usize> =
            self.dimm.candidates().iter().map(|&i| i as usize).collect();

        // Controller instruction generation: one FP32 program per
        // candidate, executed against the FP32 feature vector.
        self.dimm.step(&Instruction::Ldr { buffer: BufferId::FeatureFp32, addr: h_addr })?;
        let l = self.task.categories;
        for &cand in &candidates {
            self.dimm.reset_executor();
            let p = estimate_candidate_program(&self.task, &self.layout, self.buffer_bytes, cand)
                .map_err(|_| ExecError::Unsupported("compile failure"))?;
            for inst in p.iter() {
                self.dimm.step(inst)?;
            }
            // Classifier bias lives after the weight rows.
            let bias_addr = self.layout.classifier
                + (l * self.task.hidden * 4) as u64
                + (cand * 4) as u64;
            let bias = {
                let s = self.dimm.slice(bias_addr, 4)?;
                f32::from_le_bytes([s[0], s[1], s[2], s[3]])
            };
            let exact = self.dimm.psum_fp32() + bias;
            self.dimm.patch_output(cand, exact);
        }
        Ok((self.dimm.output().to_vec(), candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::dist::standard_normal;
    use enmc_tensor::quant::Precision;
    use enmc_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn int4_pack_unpack_roundtrip() {
        let codes: Vec<i8> = (-8..8).collect();
        let packed = pack_int4(&codes);
        assert_eq!(packed.len(), 8);
        assert_eq!(unpack_int4(&packed, 16), codes);
        // Odd length.
        let odd: Vec<i8> = vec![3, -5, 7];
        assert_eq!(unpack_int4(&pack_int4(&odd), 3), odd);
    }

    #[test]
    fn init_and_query_registers() {
        let mut d = FunctionalDimm::new(1024, 256);
        d.step(&Instruction::Init { reg: RegId::VocabSize, data: 99 }).unwrap();
        assert_eq!(d.reg(RegId::VocabSize), 99);
        d.step(&Instruction::Clr).unwrap();
        assert_eq!(d.reg(RegId::VocabSize), 0);
    }

    #[test]
    fn query_logs_register_values() {
        let mut d = FunctionalDimm::new(256, 256);
        d.step(&Instruction::Init { reg: RegId::VocabSize, data: 1234 }).unwrap();
        d.step(&Instruction::Query { reg: RegId::VocabSize }).unwrap();
        d.step(&Instruction::Query { reg: RegId::InstCounter }).unwrap();
        assert_eq!(d.query_log()[0], (RegId::VocabSize, 1234));
        // InstCounter counts the Init + first Query before this one.
        assert_eq!(d.query_log()[1].0, RegId::InstCounter);
        assert!(d.query_log()[1].1 >= 2);
    }

    #[test]
    fn out_of_bounds_load_rejected() {
        let mut d = FunctionalDimm::new(64, 256);
        d.step(&Instruction::Init { reg: RegId::ReducedDim, data: 128 }).unwrap();
        let err = d.step(&Instruction::Ldr { buffer: BufferId::FeatureInt4, addr: 32 });
        assert!(matches!(err, Err(ExecError::OutOfBounds { .. })));
    }

    /// End-to-end: the functional DIMM must produce the same mixed logits
    /// as the pure-software ApproxClassifier on the same data.
    #[test]
    fn functional_matches_software_reference() {
        let mut rng = StdRng::seed_from_u64(91);
        let (l, d, k) = (96, 64, 16);
        let mut w = Matrix::zeros(l, d);
        for v in w.as_mut_slice() {
            *v = standard_normal(&mut rng) / (d as f32).sqrt();
        }
        let b: Vector = (0..l).map(|i| (i as f32 % 5.0) * 0.01).collect();
        // A random "trained" screener (weights need not be good for the
        // equivalence check — only consistent).
        let mut wt_f = Matrix::zeros(l, k);
        for v in wt_f.as_mut_slice() {
            *v = standard_normal(&mut rng) * 0.3;
        }
        let bt: Vector = (0..l).map(|i| (i as f32 % 3.0) * 0.02).collect();
        let wt = QuantMatrix::quantize(&wt_f, Precision::Int4).unwrap();

        let task = TaskDescriptor {
            categories: l,
            hidden: d,
            reduced: k,
            screen_precision: Precision::Int4,
            batch: 1,
            threshold_bits: 0,
            weight_scale_bits: 0,
            feature_scale_bits: 0,
            softmax: true,
        };
        let mut runtime = HostRuntime::new(task, &w, &b, &wt, &bt, 256).unwrap();

        // Query.
        let ph: Vector = (0..k).map(|_| standard_normal(&mut rng)).collect();
        let h: Vector = (0..d).map(|_| standard_normal(&mut rng)).collect();
        let qph = QuantVector::quantize(&ph, Precision::Int4).unwrap();
        let threshold = 0.15_f32;

        let (logits_hw, cands_hw) = runtime.classify(&qph, &h, threshold).unwrap();

        // Software reference: same quantized screening math.
        let approx = {
            let mut z = wt.matvec_quant(&qph);
            z.add_assign(&bt);
            z
        };
        let cands_sw: Vec<usize> = (0..l).filter(|&i| approx[i] > threshold).collect();
        assert_eq!(cands_hw, cands_sw, "candidate sets must match");
        for i in 0..l {
            let expect = if cands_sw.contains(&i) {
                enmc_tensor::matrix::dot(w.row(i), h.as_slice()) + b[i]
            } else {
                approx[i]
            };
            assert!(
                (logits_hw[i] - expect).abs() < 1e-4,
                "logit {i}: hw {} vs sw {}",
                logits_hw[i],
                expect
            );
        }
    }

    #[test]
    fn filter_respects_threshold_register() {
        let mut rng = StdRng::seed_from_u64(92);
        let (l, d, k) = (64, 32, 8);
        let mut w = Matrix::zeros(l, d);
        for v in w.as_mut_slice() {
            *v = standard_normal(&mut rng) * 0.2;
        }
        let mut wt_f = Matrix::zeros(l, k);
        for v in wt_f.as_mut_slice() {
            *v = standard_normal(&mut rng) * 0.3;
        }
        let wt = QuantMatrix::quantize(&wt_f, Precision::Int4).unwrap();
        let task = TaskDescriptor {
            categories: l,
            hidden: d,
            reduced: k,
            screen_precision: Precision::Int4,
            batch: 1,
            threshold_bits: 0,
            weight_scale_bits: 0,
            feature_scale_bits: 0,
            softmax: true,
        };
        let mut runtime =
            HostRuntime::new(task, &w, &Vector::zeros(l), &wt, &Vector::zeros(l), 256).unwrap();
        let ph: Vector = (0..k).map(|_| standard_normal(&mut rng)).collect();
        let h: Vector = (0..d).map(|_| standard_normal(&mut rng)).collect();
        let qph = QuantVector::quantize(&ph, Precision::Int4).unwrap();
        let (_, lo) = runtime.classify(&qph, &h, f32::NEG_INFINITY).unwrap();
        assert_eq!(lo.len(), l, "everything passes -inf threshold");
        let (_, hi) = runtime.classify(&qph, &h, f32::INFINITY).unwrap();
        assert!(hi.is_empty(), "nothing passes +inf threshold");
    }
}
