//! Cycle-level model of one rank's near-memory logic.
//!
//! One [`RankUnit`] owns its rank's DRAM timing domain (a single-rank
//! [`DramSystem`]) and executes the classification pipeline against it:
//!
//! * the **Screener pipeline** streams the (quantized) screening-weight
//!   tiles through double-buffered 256 B buffers into the integer MAC
//!   array, filtering logits against the preloaded threshold as each tile
//!   completes — candidates trickle out *during* screening;
//! * the **Executor pipeline** consumes candidates concurrently, gathering
//!   each candidate's FP32 classifier row (random row addresses → row
//!   misses) and accumulating on the FP32 MAC array;
//! * both pipelines share the rank's DRAM controller, which arbitrates
//!   FR-FCFS — exactly the contention structure of the real design.
//!
//! The same engine also models the homogeneous-FP32 NMP baselines: their
//! [`UnitParams`] use FP32 screening storage (8× the bytes), lane counts
//! with matrix-vector efficiency factors, and no comparator array — the
//! approximate logits must spill to DRAM and be re-read for filtering
//! (paper §7.2: "the buffer overflow results in frequent DRAM memory
//! accesses").

use crate::config::EnmcConfig;
use enmc_dram::{AddressMapping, DramConfig, DramStats, DramSystem, MemRequest, RequestId};
use enmc_obs::trace::{
    TraceBuffer, TraceEvent, TraceSink, CAT_PIPELINE, TID_COUNTERS, TID_EXECUTOR, TID_PHASES,
    TID_SCREENER, TID_SFU,
};
use std::collections::{HashMap, VecDeque};

/// Ring capacity per DRAM channel when a traced simulation turns the
/// controller's command trace on.
const DRAM_TRACE_CAPACITY: usize = 1 << 20;

/// Cycle stride between sampled `busy_lanes` counter-track events when a
/// run is traced (coarser than the DRAM controller's sampling; MAC spans
/// last hundreds of cycles).
const BUSY_SAMPLE_INTERVAL: u64 = 256;

/// What one rank has to do for one classification job.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RankJob {
    /// Categories assigned to this rank (`l / total_ranks`).
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Reduced dimension `k`.
    pub reduced: usize,
    /// Batch size.
    pub batch: usize,
    /// Candidates this rank must compute exactly, per batch item.
    pub candidates_per_item: Vec<usize>,
}

impl RankJob {
    /// Total candidates across the batch.
    pub fn total_candidates(&self) -> usize {
        self.candidates_per_item.iter().sum()
    }
}

/// Microarchitectural parameters of the engine (ENMC or baseline).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UnitParams {
    /// Bits per screening-weight element (4 for ENMC, 32 for baselines).
    pub screen_bits: u32,
    /// Screening MACs retired per logic cycle (lanes × efficiency).
    pub screen_macs_per_cycle: f64,
    /// FP32 MACs retired per logic cycle for candidate rows.
    pub fp32_macs_per_cycle: f64,
    /// Input-buffer bytes (tile size).
    pub buffer_bytes: usize,
    /// Tiles in flight (double buffering).
    pub prefetch_depth: usize,
    /// DRAM-bus cycles per logic cycle.
    pub clock_ratio: u64,
    /// `true` if a comparator array filters logits on the fly (ENMC);
    /// `false` forces the z̃ spill + re-read + compute-filter path.
    pub inline_filter: bool,
    /// Ablation knob: when `true`, candidates release only after screening
    /// fully completes (no Screener ∥ Executor overlap).
    pub serial_phases: bool,
    /// Special-function throughput (exp evaluations per logic cycle).
    pub sfu_per_cycle: f64,
    /// The single-rank DRAM timing domain this unit simulates against
    /// (Table 3 DDR4 unless a memory-technology preset overrides it).
    pub dram: DramConfig,
}

impl UnitParams {
    /// The ENMC unit of Table 3 on the baseline DDR4 timing domain.
    pub fn enmc(cfg: &EnmcConfig) -> Self {
        Self::enmc_on(cfg, DramConfig::enmc_single_rank(), 1200)
    }

    /// The ENMC unit over an arbitrary single-rank DRAM timing domain
    /// clocked at `io_mhz` — the memory-technology preset entry point.
    /// `enmc_on(cfg, DramConfig::enmc_single_rank(), 1200)` is bit-exact
    /// with [`UnitParams::enmc`].
    pub fn enmc_on(cfg: &EnmcConfig, dram: DramConfig, io_mhz: u64) -> Self {
        UnitParams {
            screen_bits: cfg.screen_bits,
            screen_macs_per_cycle: cfg.int4_macs as f64,
            fp32_macs_per_cycle: cfg.fp32_macs as f64,
            buffer_bytes: cfg.buffer_bytes,
            prefetch_depth: cfg.prefetch_depth,
            clock_ratio: cfg.dram_cycles_per_logic_cycle(io_mhz),
            inline_filter: true,
            serial_phases: false,
            sfu_per_cycle: 4.0,
            dram,
        }
    }

    /// How many batch items' screening activations fit in the feature
    /// buffer simultaneously (weight-stream reuse).
    pub fn batch_reuse(&self, reduced: usize) -> usize {
        let bytes_per_item = (reduced * self.screen_bits as usize).div_ceil(8);
        (self.buffer_bytes / bytes_per_item.max(1)).max(1)
    }
}

/// Timing and traffic produced by one rank for one job.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct UnitReport {
    /// Total DRAM-bus cycles to finish the job.
    pub dram_cycles: u64,
    /// Wall-clock nanoseconds.
    pub ns: f64,
    /// Cycles the screening MAC array was busy (DRAM-clock).
    pub screener_busy: u64,
    /// Cycles the FP32 MAC array was busy (DRAM-clock).
    pub executor_busy: u64,
    /// Cycles spent in the special-function unit.
    pub sfu_cycles: u64,
    /// DRAM statistics (reads/writes/activations/energy inputs).
    pub dram: DramStats,
    /// Bytes of screening-weight traffic.
    pub screen_bytes: u64,
    /// Bytes of exact candidate-row traffic.
    pub exact_bytes: u64,
    /// Bytes of spill traffic (baselines only).
    pub spill_bytes: u64,
    /// DRAM-clock cycle at which the Screener retired its last tile.
    pub screen_done_cycle: u64,
    /// DRAM-clock cycle at which the Executor finished the last candidate
    /// (and, for spill baselines, the last compute-filter).
    pub exec_done_cycle: u64,
    /// DDR4 protocol violations the conformance checker observed (always
    /// 0 unless the run enabled protocol checking — and 0 then too,
    /// unless the timing model is broken).
    pub protocol_violations: u64,
}

impl UnitReport {
    /// Merges the reports of symmetric rank-units that ran **in
    /// parallel**, one job slice each, into a system-level report.
    ///
    /// Latency fields (`dram_cycles`, `ns`, and the phase boundaries)
    /// come from the straggler — the unit with the largest cycle count,
    /// ties broken by the lowest index, so the result does not depend on
    /// the order results arrived in. Work counters (busy cycles and
    /// traffic bytes) sum across units, and the DRAM statistics fold with
    /// [`DramStats::merge_parallel`] in index order.
    ///
    /// # Panics
    ///
    /// Panics when `reports` is empty.
    pub fn merge_parallel(reports: &[UnitReport]) -> UnitReport {
        assert!(!reports.is_empty(), "no rank reports to merge");
        let straggler = reports
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.dram_cycles.cmp(&b.dram_cycles).then(ib.cmp(ia))
            })
            .map(|(_, r)| r)
            .expect("nonempty");
        let mut merged = UnitReport {
            dram_cycles: straggler.dram_cycles,
            ns: straggler.ns,
            sfu_cycles: straggler.sfu_cycles,
            screen_done_cycle: straggler.screen_done_cycle,
            exec_done_cycle: straggler.exec_done_cycle,
            ..UnitReport::default()
        };
        for r in reports {
            merged.screener_busy += r.screener_busy;
            merged.executor_busy += r.executor_busy;
            merged.screen_bytes += r.screen_bytes;
            merged.exact_bytes += r.exact_bytes;
            merged.spill_bytes += r.spill_bytes;
            merged.protocol_violations += r.protocol_violations;
            merged.dram.merge_parallel(&r.dram);
        }
        merged
    }

    /// Records the unit's counters (plus its DRAM statistics via
    /// [`DramStats::record_into`]) into a metrics registry under the
    /// `unit.` / `dram.` prefixes.
    pub fn record_into(
        &self,
        registry: &mut enmc_obs::MetricsRegistry,
        labels: &[(&str, &str)],
    ) {
        registry.counter_add("unit.dram_cycles", labels, self.dram_cycles);
        registry.counter_add("unit.screener_busy_cycles", labels, self.screener_busy);
        registry.counter_add("unit.executor_busy_cycles", labels, self.executor_busy);
        registry.counter_add("unit.sfu_cycles", labels, self.sfu_cycles);
        registry.counter_add("unit.screen_bytes", labels, self.screen_bytes);
        registry.counter_add("unit.exact_bytes", labels, self.exact_bytes);
        registry.counter_add("unit.spill_bytes", labels, self.spill_bytes);
        registry.counter_add("unit.protocol_violations", labels, self.protocol_violations);
        registry.gauge_set("unit.ns", labels, self.ns);
        self.dram.record_into(registry, labels);
    }
}

/// One rank's near-memory engine.
#[derive(Debug, Clone)]
pub struct RankUnit {
    params: UnitParams,
}

/// Who a completed burst belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tag {
    ScreenTile(usize),
    ExecRow(usize),
    SpillWrite(usize),
    SpillRead(usize),
}

/// A multi-burst fetch with partial-issue progress.
#[derive(Debug, Clone, Copy)]
struct Fetch {
    tag: Tag,
    base: u64,
    total: usize,
    issued: usize,
    write: bool,
}

/// Per-pipeline fetch queue that tolerates a full DRAM queue by resuming
/// partially issued transfers on later cycles.
#[derive(Debug, Default)]
struct Fetcher {
    queue: VecDeque<Fetch>,
}

impl Fetcher {
    fn push(&mut self, tag: Tag, base: u64, bursts: usize, write: bool) {
        self.queue.push_back(Fetch { tag, base, total: bursts, issued: 0, write });
    }

    /// Issues as many bursts as the DRAM queue accepts, front first.
    fn pump(&mut self, dram: &mut DramSystem, inflight: &mut HashMap<RequestId, Tag>) {
        while let Some(f) = self.queue.front_mut() {
            while f.issued < f.total {
                let addr = f.base + (f.issued * 64) as u64;
                let req =
                    if f.write { MemRequest::write(addr) } else { MemRequest::read(addr) };
                match dram.enqueue(req) {
                    Some(id) => {
                        inflight.insert(id, f.tag);
                        f.issued += 1;
                    }
                    None => return, // DRAM queue full; resume next cycle
                }
            }
            self.queue.pop_front();
        }
    }

    fn outstanding(&self) -> usize {
        self.queue.len()
    }
}

impl RankUnit {
    /// Creates an engine with the given parameters.
    pub fn new(params: UnitParams) -> Self {
        RankUnit { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &UnitParams {
        &self.params
    }

    /// Simulates `job` to completion and reports timing/traffic.
    ///
    /// # Panics
    ///
    /// Panics if `job.candidates_per_item.len() != job.batch` or any
    /// dimension is zero.
    pub fn simulate(&self, job: &RankJob) -> UnitReport {
        self.simulate_traced(job, None)
    }

    /// [`RankUnit::simulate`] with an optional trace collector.
    ///
    /// When `trace` is `Some`, the run emits pipeline-stage spans
    /// (`screen_tile`, `exec_row`, `compute_filter`, `sfu` on the
    /// [`TID_SCREENER`] / [`TID_EXECUTOR`] / [`TID_SFU`] tracks), phase
    /// summary spans (`screen` / `gather` / `activation` on
    /// [`TID_PHASES`]), and the DRAM controller's per-command events.
    /// Passing `None` is exactly [`RankUnit::simulate`]: the hot loop pays
    /// one branch per retired tile/row and nothing else.
    pub fn simulate_traced(
        &self,
        job: &RankJob,
        trace: Option<&mut TraceBuffer>,
    ) -> UnitReport {
        self.simulate_checked(job, trace, false)
    }

    /// [`RankUnit::simulate_traced`] with the DDR4 protocol conformance
    /// checker optionally shadowing the rank's DRAM controller. Checking
    /// does not perturb timing; the observed violation count lands in
    /// [`UnitReport::protocol_violations`] (and, when also tracing, each
    /// violation becomes a `protocol`-category trace event).
    pub fn simulate_checked(
        &self,
        job: &RankJob,
        mut trace: Option<&mut TraceBuffer>,
        check_protocol: bool,
    ) -> UnitReport {
        assert_eq!(job.candidates_per_item.len(), job.batch, "candidate counts per item");
        assert!(job.categories > 0 && job.hidden > 0 && job.reduced > 0 && job.batch > 0);
        let p = self.params;
        let mut dram = DramSystem::with_mapping(p.dram, AddressMapping::RoRaBaCoBg);
        if trace.is_some() {
            dram.enable_trace(DRAM_TRACE_CAPACITY);
        }
        if check_protocol {
            dram.enable_protocol_check();
        }

        // ---- derived shapes ------------------------------------------------
        let elems_per_tile = (p.buffer_bytes * 8 / p.screen_bits as usize).max(1);
        let total_screen_elems = job.categories * job.reduced;
        let screen_tiles = total_screen_elems.div_ceil(elems_per_tile);
        let bursts_per_tile = (p.buffer_bytes / 64).max(1);
        let reuse = p.batch_reuse(job.reduced);
        let batch_groups = job.batch.div_ceil(reuse);
        let total_stream_tiles = screen_tiles * batch_groups;
        let row_bytes = job.hidden * 4;
        let bursts_per_row = row_bytes.div_ceil(64);
        let total_candidates = job.total_candidates();
        let spill_bursts_per_group = (job.categories * 4).div_ceil(64);

        // Memory map.
        let screen_base = 0u64;
        let screen_bytes_total =
            ((total_screen_elems * p.screen_bits as usize).div_ceil(8) as u64).div_ceil(64) * 64;
        let classifier_base = screen_bytes_total;
        let spill_base = classifier_base + (job.categories * row_bytes) as u64;

        // Items sharing batch group `g`'s weight stream.
        let items_in_group = |g: usize| -> usize {
            let start = g * reuse;
            reuse.min(job.batch - start.min(job.batch))
        };
        // Candidates owed once group `g` finishes filtering.
        let group_candidates: Vec<usize> = (0..batch_groups)
            .map(|g| {
                let start = g * reuse;
                (start..(start + items_in_group(g)).min(job.batch))
                    .map(|i| job.candidates_per_item[i])
                    .sum()
            })
            .collect();

        // ---- pipeline state -------------------------------------------------
        let mut inflight: HashMap<RequestId, Tag> = HashMap::new();
        let mut remaining: HashMap<Tag, usize> = HashMap::new();
        let mut screen_fetch = Fetcher::default();
        let mut exec_fetch = Fetcher::default();
        let mut spill_fetch = Fetcher::default();

        let mut next_tile = 0usize; // next weight tile to request
        let mut tiles_ready: VecDeque<usize> = VecDeque::new();
        let mut tiles_computed = 0usize;
        let mut screen_mac_free: u64 = 0;
        let mut group_tiles_done = vec![0usize; batch_groups];

        let mut spill_written = vec![false; batch_groups];
        let mut filter_done_at: Vec<Option<u64>> = vec![None; batch_groups];

        let mut candidates_released = 0usize;
        let mut candidates_fetched = 0usize; // rows whose fetch has been queued
        let mut candidates_computed = 0usize;
        let mut rows_ready: VecDeque<usize> = VecDeque::new();
        let mut exec_mac_free: u64 = 0;

        let mut report = UnitReport::default();

        // Deterministic pseudo-random classifier row addresses for the
        // gathered candidates.
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next_row_addr = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            classifier_base + (lcg >> 33) % job.categories.max(1) as u64 * row_bytes as u64
        };

        let screen_tile_cycles = |items: usize| -> u64 {
            ((elems_per_tile * items) as f64 / p.screen_macs_per_cycle).ceil() as u64
                * p.clock_ratio
        };
        let exec_row_cycles =
            ((job.hidden as f64) / p.fp32_macs_per_cycle).ceil() as u64 * p.clock_ratio;
        let compute_filter_cycles =
            ((job.categories as f64) / p.fp32_macs_per_cycle).ceil() as u64 * p.clock_ratio;

        let mut guard: u64 = 0;
        loop {
            let now = dram.cycle();
            guard += 1;
            assert!(guard < 4_000_000_000, "simulation did not converge");

            // (0) Sampled busy-lane counter track: how many MAC arrays
            // (Screener + Executor) are computing this cycle.
            if now % BUSY_SAMPLE_INTERVAL == 0 {
                if let Some(tb) = trace.as_deref_mut() {
                    let busy = u64::from(screen_mac_free > now) + u64::from(exec_mac_free > now);
                    tb.record(
                        TraceEvent::counter("busy_lanes", CAT_PIPELINE, now, 0, TID_COUNTERS)
                            .with_arg("value", busy),
                    );
                }
            }

            // (1) Queue new screening-tile fetches under the prefetch cap.
            while next_tile < total_stream_tiles
                && screen_fetch.outstanding() + tiles_ready.len() < p.prefetch_depth + 1
                && (next_tile - tiles_computed) < p.prefetch_depth + 2
            {
                let pos = next_tile % screen_tiles;
                let tag = Tag::ScreenTile(next_tile);
                screen_fetch.push(tag, screen_base + (pos * p.buffer_bytes) as u64, bursts_per_tile, false);
                remaining.insert(tag, bursts_per_tile);
                report.screen_bytes += (bursts_per_tile * 64) as u64;
                next_tile += 1;
            }

            // (2) Queue candidate-row fetches for released candidates.
            while candidates_fetched < candidates_released
                && exec_fetch.outstanding() + rows_ready.len() < 4
            {
                let tag = Tag::ExecRow(candidates_fetched);
                exec_fetch.push(tag, next_row_addr(), bursts_per_row, false);
                remaining.insert(tag, bursts_per_row);
                report.exact_bytes += (bursts_per_row * 64) as u64;
                candidates_fetched += 1;
            }

            // (3) Pump the fetchers into the shared DRAM controller.
            screen_fetch.pump(&mut dram, &mut inflight);
            exec_fetch.pump(&mut dram, &mut inflight);
            spill_fetch.pump(&mut dram, &mut inflight);

            // (4) Drain DRAM completions.
            for c in dram.drain_completions() {
                let Some(tag) = inflight.remove(&c.id) else { continue };
                let Some(left) = remaining.get_mut(&tag) else { continue };
                *left -= 1;
                if *left > 0 {
                    continue;
                }
                remaining.remove(&tag);
                match tag {
                    Tag::ScreenTile(t) => tiles_ready.push_back(t),
                    Tag::ExecRow(cand) => rows_ready.push_back(cand),
                    Tag::SpillWrite(group) => {
                        // Logits durable: read them back for filtering.
                        let tag = Tag::SpillRead(group);
                        spill_fetch.push(
                            tag,
                            spill_base + (group * spill_bursts_per_group * 64) as u64,
                            spill_bursts_per_group,
                            false,
                        );
                        remaining.insert(tag, spill_bursts_per_group);
                        report.spill_bytes += (spill_bursts_per_group * 64) as u64;
                    }
                    Tag::SpillRead(group) => {
                        // Compute-filter the group's logits on the FP32 lanes.
                        let start = now.max(exec_mac_free);
                        let done = start + compute_filter_cycles;
                        exec_mac_free = done;
                        report.executor_busy += compute_filter_cycles;
                        filter_done_at[group] = Some(done);
                        if let Some(tb) = trace.as_deref_mut() {
                            tb.record(
                                TraceEvent::begin("compute_filter", CAT_PIPELINE, start, 0, TID_EXECUTOR)
                                    .with_arg("group", group as u64),
                            );
                            tb.record(TraceEvent::end("compute_filter", CAT_PIPELINE, done, 0, TID_EXECUTOR));
                        }
                    }
                }
            }

            // (5) Screener MAC consumes ready tiles in order.
            if screen_mac_free <= now {
                if let Some(t) = tiles_ready.pop_front() {
                    let group = t / screen_tiles;
                    let dur = screen_tile_cycles(items_in_group(group));
                    screen_mac_free = now + dur;
                    report.screener_busy += dur;
                    if let Some(tb) = trace.as_deref_mut() {
                        tb.record(
                            TraceEvent::begin("screen_tile", CAT_PIPELINE, now, 0, TID_SCREENER)
                                .with_arg("tile", t as u64)
                                .with_arg("group", group as u64),
                        );
                        tb.record(TraceEvent::end(
                            "screen_tile",
                            CAT_PIPELINE,
                            screen_mac_free,
                            0,
                            TID_SCREENER,
                        ));
                    }
                    tiles_computed += 1;
                    group_tiles_done[group] += 1;
                    if p.inline_filter {
                        if p.serial_phases {
                            // Ablation: no overlap — candidates appear only
                            // once the whole screening pass is done.
                            if tiles_computed == total_stream_tiles {
                                candidates_released = total_candidates;
                            }
                        } else {
                            // Comparator array keeps pace with the MACs;
                            // release candidates in proportion to progress.
                            candidates_released = (total_candidates as f64
                                * tiles_computed as f64
                                / total_stream_tiles as f64)
                                .floor() as usize;
                            if tiles_computed == total_stream_tiles {
                                candidates_released = total_candidates;
                            }
                        }
                    } else if group_tiles_done[group] == screen_tiles
                        && !spill_written[group]
                    {
                        // No comparator array: spill this group's logits.
                        spill_written[group] = true;
                        let tag = Tag::SpillWrite(group);
                        spill_fetch.push(
                            tag,
                            spill_base + (group * spill_bursts_per_group * 64) as u64,
                            spill_bursts_per_group,
                            true,
                        );
                        remaining.insert(tag, spill_bursts_per_group);
                        report.spill_bytes += (spill_bursts_per_group * 64) as u64;
                    }
                }
            }

            // (5b) Candidate release for the spill-filter path.
            if !p.inline_filter {
                let released: usize = (0..batch_groups)
                    .filter(|&g| filter_done_at[g].is_some_and(|t| t <= now))
                    .map(|g| group_candidates[g])
                    .sum();
                candidates_released = released.min(total_candidates);
            }

            // (6) Executor MAC consumes ready rows.
            if exec_mac_free <= now {
                if let Some(cand) = rows_ready.pop_front() {
                    exec_mac_free = now + exec_row_cycles;
                    report.executor_busy += exec_row_cycles;
                    candidates_computed += 1;
                    if let Some(tb) = trace.as_deref_mut() {
                        tb.record(
                            TraceEvent::begin("exec_row", CAT_PIPELINE, now, 0, TID_EXECUTOR)
                                .with_arg("candidate", cand as u64),
                        );
                        tb.record(TraceEvent::end(
                            "exec_row",
                            CAT_PIPELINE,
                            exec_mac_free,
                            0,
                            TID_EXECUTOR,
                        ));
                    }
                }
            }

            dram.tick();
            let now = dram.cycle();

            // (7) Termination.
            let screening_done =
                tiles_computed == total_stream_tiles && now >= screen_mac_free;
            let filter_done = if p.inline_filter {
                screening_done
            } else {
                filter_done_at.iter().all(|d| d.is_some_and(|t| t <= now))
            };
            let exec_done = filter_done
                && candidates_computed == total_candidates
                && now >= exec_mac_free;
            if screening_done && filter_done && exec_done && dram.is_idle() {
                break;
            }
        }

        // Phase boundaries: the Screener retired its last tile at
        // `screen_mac_free` (the loop cannot exit before it); everything up
        // to the loop's exit cycle is candidate gather + filtering.
        let loop_end = dram.cycle();
        report.screen_done_cycle = screen_mac_free.min(loop_end);
        report.exec_done_cycle = loop_end;

        // (8) Final activation in the special-function unit.
        let sfu_logic = ((job.categories * job.batch) as f64 / p.sfu_per_cycle).ceil() as u64;
        report.sfu_cycles = sfu_logic * p.clock_ratio;
        for _ in 0..report.sfu_cycles {
            dram.tick();
        }

        report.dram_cycles = dram.cycle();
        report.ns = dram.elapsed_ns();
        report.dram = dram.stats();
        report.protocol_violations = dram.protocol_violation_count();
        if let Some(tb) = trace.as_deref_mut() {
            tb.record(
                TraceEvent::begin("sfu", CAT_PIPELINE, loop_end, 0, TID_SFU)
                    .with_arg("evals", (job.categories * job.batch) as u64),
            );
            tb.record(TraceEvent::end("sfu", CAT_PIPELINE, report.dram_cycles, 0, TID_SFU));
            // Whole-run phase summary spans on their own track. They tile
            // the timeline exactly: screen ∪ gather ∪ activation covers
            // [0, dram_cycles] with no overlap.
            let bounds: [(&'static str, u64, u64); 3] = [
                ("screen", 0, report.screen_done_cycle),
                ("gather", report.screen_done_cycle, report.exec_done_cycle),
                ("activation", report.exec_done_cycle, report.dram_cycles),
            ];
            for (name, start, end) in bounds {
                tb.record(TraceEvent::begin(name, CAT_PIPELINE, start, 0, TID_PHASES));
                tb.record(TraceEvent::end(name, CAT_PIPELINE, end, 0, TID_PHASES));
            }
            for e in dram.take_trace() {
                tb.record(e);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(l: usize, batch: usize, m: usize) -> RankJob {
        RankJob {
            categories: l,
            hidden: 512,
            reduced: 128,
            batch,
            candidates_per_item: vec![m; batch],
        }
    }

    fn enmc_unit() -> RankUnit {
        RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()))
    }

    fn baseline_unit() -> RankUnit {
        RankUnit::new(UnitParams {
            screen_bits: 32,
            screen_macs_per_cycle: 16.0 * 0.9,
            fp32_macs_per_cycle: 16.0 * 0.9,
            buffer_bytes: 512,
            prefetch_depth: 2,
            clock_ratio: 3,
            inline_filter: false,
            serial_phases: false,
            sfu_per_cycle: 1.0,
            dram: DramConfig::enmc_single_rank(),
        })
    }

    #[test]
    fn simulation_completes_and_reports() {
        let r = enmc_unit().simulate(&job(1024, 1, 16));
        assert!(r.dram_cycles > 0);
        assert!(r.ns > 0.0);
        assert!(r.screener_busy > 0);
        assert!(r.executor_busy > 0);
        assert!(r.dram.reads > 0);
    }

    #[test]
    fn screening_traffic_matches_shape() {
        let r = enmc_unit().simulate(&job(2048, 1, 8));
        // 2048 × 128 INT4 elems = 128 KiB = 512 tiles × 256 B.
        assert_eq!(r.screen_bytes, 2048 * 128 / 2);
    }

    #[test]
    fn exact_traffic_scales_with_candidates() {
        let a = enmc_unit().simulate(&job(1024, 1, 8));
        let b = enmc_unit().simulate(&job(1024, 1, 32));
        assert_eq!(b.exact_bytes, 4 * a.exact_bytes);
        assert!(b.dram_cycles >= a.dram_cycles);
    }

    #[test]
    fn batch_shares_one_weight_stream() {
        // k=128 at INT4 = 64 B per item → 4 items share one weight stream:
        // DRAM traffic stays flat and time grows sublinearly (the MAC
        // array, not DRAM, absorbs the extra work).
        let b1 = enmc_unit().simulate(&job(4096, 1, 8));
        let b4 = enmc_unit().simulate(&job(4096, 4, 8));
        assert_eq!(b1.screen_bytes, b4.screen_bytes);
        let ratio = b4.dram_cycles as f64 / b1.dram_cycles as f64;
        assert!(ratio < 3.5, "batch-4 / batch-1 cycle ratio {ratio}");
    }

    #[test]
    fn screening_is_dram_bound_not_mac_bound() {
        // Paper Fig. 5(b): screening has low operational intensity — the
        // INT4 array idles part of the time waiting on DRAM.
        let r = enmc_unit().simulate(&job(8192, 1, 0));
        assert!(
            r.screener_busy < r.dram_cycles,
            "screener busy {} of {}",
            r.screener_busy,
            r.dram_cycles
        );
    }

    #[test]
    fn enmc_produces_no_spill_traffic() {
        let r = enmc_unit().simulate(&job(2048, 2, 8));
        assert_eq!(r.spill_bytes, 0);
    }

    #[test]
    fn baseline_spills_and_is_much_slower() {
        let j = job(2048, 1, 8);
        let b = baseline_unit().simulate(&j);
        let e = enmc_unit().simulate(&j);
        assert!(b.spill_bytes > 0);
        assert!(
            b.dram_cycles > 3 * e.dram_cycles,
            "baseline {} vs enmc {}",
            b.dram_cycles,
            e.dram_cycles
        );
    }

    #[test]
    fn baseline_batch_does_not_amortize() {
        // FP32 activations (512 B at k=128) fill the baseline buffer: each
        // batch item re-streams the weights.
        let b1 = baseline_unit().simulate(&job(2048, 1, 8));
        let b2 = baseline_unit().simulate(&job(2048, 2, 8));
        let ratio = b2.dram_cycles as f64 / b1.dram_cycles as f64;
        assert!(ratio > 1.6, "batch-2 / batch-1 ratio {ratio}");
    }

    #[test]
    fn executor_overlaps_screening() {
        // Candidate rows add ~25% extra DRAM traffic here; because the
        // Executor runs concurrently with the Screener, total time grows
        // by roughly that traffic share — far less than a serial
        // screen-then-gather schedule would cost.
        let with_cands = enmc_unit().simulate(&job(8192, 1, 64));
        let no_cands = enmc_unit().simulate(&job(8192, 1, 0));
        let ratio = with_cands.dram_cycles as f64 / no_cands.dram_cycles as f64;
        assert!(ratio > 1.0, "candidates cannot be free: {ratio}");
        assert!(ratio < 1.6, "no overlap visible: {ratio}");
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_spans() {
        let j = job(1024, 1, 16);
        let unit = enmc_unit();
        let plain = unit.simulate(&j);
        let mut tb = TraceBuffer::unbounded();
        let traced = unit.simulate_traced(&j, Some(&mut tb));
        // Tracing must not perturb timing.
        assert_eq!(plain.dram_cycles, traced.dram_cycles);
        assert_eq!(plain.dram, traced.dram);
        let events = tb.drain();
        let names: std::collections::HashSet<&str> = events.iter().map(|e| e.name).collect();
        for expected in ["screen_tile", "exec_row", "sfu", "screen", "gather", "activation", "ACT", "RD"] {
            assert!(names.contains(expected), "missing {expected} in {names:?}");
        }
        // Phase boundaries tile [0, dram_cycles].
        assert!(traced.screen_done_cycle <= traced.exec_done_cycle);
        assert!(traced.exec_done_cycle <= traced.dram_cycles);
        assert_eq!(traced.dram_cycles - traced.exec_done_cycle, traced.sfu_cycles);
    }

    #[test]
    fn traced_run_samples_busy_lanes() {
        let mut tb = TraceBuffer::unbounded();
        enmc_unit().simulate_traced(&job(1024, 1, 16), Some(&mut tb));
        let samples: Vec<u64> = tb
            .iter()
            .filter(|e| e.name == "busy_lanes")
            .map(|e| e.args[0].1)
            .collect();
        assert!(!samples.is_empty(), "no busy_lanes samples");
        assert!(samples.iter().all(|&v| v <= 2), "at most two MAC arrays: {samples:?}");
        assert!(samples.iter().any(|&v| v > 0), "some sample must catch a busy MAC");
    }

    #[test]
    fn baseline_trace_includes_compute_filter() {
        let mut tb = TraceBuffer::unbounded();
        baseline_unit().simulate_traced(&job(2048, 1, 8), Some(&mut tb));
        assert!(tb.iter().any(|e| e.name == "compute_filter"));
    }

    #[test]
    fn checked_run_is_clean_and_identical() {
        let j = job(1024, 1, 16);
        let unit = enmc_unit();
        let plain = unit.simulate(&j);
        let checked = unit.simulate_checked(&j, None, true);
        assert_eq!(checked.protocol_violations, 0, "controller violated DDR4 timing");
        // Checking must not perturb the simulation.
        assert_eq!(plain.dram_cycles, checked.dram_cycles);
        assert_eq!(plain.dram, checked.dram);
        // The baseline engine's spill path must conform too.
        let b = baseline_unit().simulate_checked(&job(2048, 1, 8), None, true);
        assert_eq!(b.protocol_violations, 0);
    }

    #[test]
    fn report_records_metrics() {
        let r = enmc_unit().simulate(&job(1024, 1, 16));
        let mut reg = enmc_obs::MetricsRegistry::new();
        r.record_into(&mut reg, &[("rank", "0")]);
        assert_eq!(reg.counter_value("unit.dram_cycles", &[("rank", "0")]), r.dram_cycles);
        assert_eq!(reg.counter_value("dram.reads", &[("rank", "0")]), r.dram.reads);
    }

    #[test]
    #[should_panic(expected = "candidate counts")]
    fn rejects_mismatched_candidates() {
        enmc_unit().simulate(&RankJob {
            categories: 64,
            hidden: 64,
            reduced: 16,
            batch: 2,
            candidates_per_item: vec![1],
        });
    }
}
