//! Hardware configurations (paper Tables 3 and 4).

/// Configuration of the ENMC logic on one rank (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnmcConfig {
    /// Logic frequency in MHz (Table 3: 400).
    pub freq_mhz: u64,
    /// INT4 multiply-accumulate lanes in the Screener (Table 3: 128).
    pub int4_macs: usize,
    /// Bits per screening-weight element (Table 3: 4; the auto-tuner
    /// explores wider screeners).
    pub screen_bits: u32,
    /// FP32 multiply-accumulate lanes in the Executor (Table 3: 16).
    pub fp32_macs: usize,
    /// Input-buffer capacity in bytes (Table 3: 256 B each).
    pub buffer_bytes: usize,
    /// Comparators in the threshold filter (one per INT4 lane).
    pub filter_width: usize,
    /// Tiles the Screener may have in flight (double buffering).
    pub prefetch_depth: usize,
}

impl Default for EnmcConfig {
    fn default() -> Self {
        Self::table3()
    }
}

impl EnmcConfig {
    /// The paper's Table 3 configuration.
    pub fn table3() -> Self {
        EnmcConfig {
            freq_mhz: 400,
            int4_macs: 128,
            screen_bits: 4,
            fp32_macs: 16,
            buffer_bytes: 256,
            filter_width: 128,
            prefetch_depth: 2,
        }
    }

    /// DRAM-bus cycles per logic cycle (DDR4-2400 bus at 1200 MHz).
    pub fn dram_cycles_per_logic_cycle(&self, dram_freq_mhz: u64) -> u64 {
        (dram_freq_mhz / self.freq_mhz).max(1)
    }
}

/// Configuration of a homogeneous NMP baseline (Table 4).
///
/// All baselines carry only FP32-class lanes; screening data must therefore
/// be stored and streamed at full precision, and filtering requires
/// materializing the approximate logits (no comparator array).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NmpConfig {
    /// Display name.
    pub name: &'static str,
    /// Logic frequency in MHz.
    pub freq_mhz: u64,
    /// FP32 lanes.
    pub fp32_macs: usize,
    /// Sustained utilization of the lanes on matrix-vector work (systolic
    /// arrays utilize poorly on MV; vector units utilize well).
    pub mv_efficiency: f64,
    /// On-logic working buffer in bytes.
    pub buffer_bytes: usize,
    /// Output/intermediate storage before spilling to DRAM, in bytes.
    pub spill_buffer_bytes: usize,
    /// Number of rank-level units (TensorDIMM-Large doubles them).
    pub units_per_channel: usize,
}

impl NmpConfig {
    /// NDA (Farmahini-Farahani et al., HPCA'15): 4×4 CGRA functional units
    /// + 1 KB memory. CGRAs sustain moderate MV utilization.
    pub fn nda() -> Self {
        NmpConfig {
            name: "NDA",
            freq_mhz: 400,
            fp32_macs: 16,
            mv_efficiency: 0.55,
            buffer_bytes: 1024,
            spill_buffer_bytes: 1024,
            units_per_channel: 8,
        }
    }

    /// Chameleon (Asghari-Moghaddam et al., MICRO'16): 4×4 systolic array
    /// plus 1 KB memory. Systolic arrays are built for matrix-matrix reuse
    /// and idle heavily on matrix-vector streams.
    pub fn chameleon() -> Self {
        NmpConfig {
            name: "Chameleon",
            freq_mhz: 400,
            fp32_macs: 16,
            mv_efficiency: 0.30,
            buffer_bytes: 1024,
            spill_buffer_bytes: 1024,
            units_per_channel: 8,
        }
    }

    /// TensorDIMM (Kwon et al., MICRO'19): 16-lane vector unit + three
    /// 512 B queues. Vector units stream MV well but the small queues
    /// spill intermediates.
    pub fn tensordimm() -> Self {
        NmpConfig {
            name: "TensorDIMM",
            freq_mhz: 400,
            fp32_macs: 16,
            mv_efficiency: 0.90,
            buffer_bytes: 512,
            spill_buffer_bytes: 512,
            units_per_channel: 8,
        }
    }

    /// TensorDIMM-Large: the scaled-up variant of Fig. 14/15 with 4× the
    /// lanes and buffering and twice the rank-units per channel (beyond
    /// the Table 4 iso-budget envelope).
    pub fn tensordimm_large() -> Self {
        NmpConfig {
            name: "TensorDIMM-Large",
            freq_mhz: 400,
            fp32_macs: 64,
            mv_efficiency: 0.90,
            buffer_bytes: 2048,
            spill_buffer_bytes: 2048,
            units_per_channel: 16,
        }
    }

    /// The three Table 4 baselines in the paper's order.
    pub fn table4() -> [NmpConfig; 3] {
        [Self::nda(), Self::chameleon(), Self::tensordimm()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = EnmcConfig::table3();
        assert_eq!(c.freq_mhz, 400);
        assert_eq!(c.int4_macs, 128);
        assert_eq!(c.fp32_macs, 16);
        assert_eq!(c.buffer_bytes, 256);
    }

    #[test]
    fn clock_ratio_is_three() {
        let c = EnmcConfig::table3();
        assert_eq!(c.dram_cycles_per_logic_cycle(1200), 3);
    }

    #[test]
    fn baselines_are_iso_lane_budget() {
        for b in NmpConfig::table4() {
            assert_eq!(b.fp32_macs, 16, "{}", b.name);
        }
    }

    #[test]
    fn tensordimm_streams_best_chameleon_worst() {
        let [nda, cham, td] = NmpConfig::table4();
        assert!(td.mv_efficiency > nda.mv_efficiency);
        assert!(nda.mv_efficiency > cham.mv_efficiency);
    }

    #[test]
    fn large_variant_is_bigger() {
        let td = NmpConfig::tensordimm();
        let tdl = NmpConfig::tensordimm_large();
        assert!(tdl.fp32_macs > td.fp32_macs);
        assert!(tdl.spill_buffer_bytes > td.spill_buffer_bytes);
    }
}
