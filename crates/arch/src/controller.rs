//! The ENMC controller front-end (paper §5.2): instruction buffer, decoder
//! and instruction generator.
//!
//! Instructions reach the DIMM as PRECHARGE frames — at most one per
//! memory-clock C/A slot — and are decoded at one per 400 MHz logic cycle.
//! The design only works if this front-end never starves the datapath;
//! this module analyzes a compiled program against the hardware rates and
//! reports which resource bounds it. Used by tests to substantiate the
//! paper's implicit claim that instruction delivery is free, and by the
//! harnesses to budget C/A-bus usage against data traffic.

use enmc_isa::{Instruction, Program};

/// Controller hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControllerConfig {
    /// Instruction FIFO depth (entries).
    pub fifo_depth: usize,
    /// Decoded instructions per logic cycle.
    pub decode_per_cycle: usize,
    /// DRAM-bus cycles per logic cycle.
    pub clock_ratio: u64,
    /// C/A-bus slots per memory cycle available for ENMC frames (the rest
    /// carry real DRAM commands).
    pub frame_slots_per_cycle: f64,
    /// Instructions the generator emits per candidate (gather tiles + MAC
    /// + finalize; depends on `d` and buffer size, set per task).
    pub insts_per_candidate: usize,
}

impl ControllerConfig {
    /// The Table 3 controller: 64-entry FIFO, single decoder at 400 MHz,
    /// half the C/A slots available for frames.
    pub fn table3(insts_per_candidate: usize) -> Self {
        ControllerConfig {
            fifo_depth: 64,
            decode_per_cycle: 1,
            clock_ratio: 3,
            frame_slots_per_cycle: 0.5,
            insts_per_candidate,
        }
    }
}

/// Which resource limits instruction delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FrontEndBound {
    /// The C/A bus (frame transport) is the limit.
    Wire,
    /// The decoder is the limit.
    Decode,
    /// Neither limits before the datapath does.
    Datapath,
}

/// Front-end analysis of one program.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControllerReport {
    /// Host-issued instructions (the static program).
    pub host_instructions: usize,
    /// Controller-generated instructions (candidates).
    pub generated_instructions: usize,
    /// Memory cycles to transport all host frames over the C/A bus.
    pub wire_cycles: u64,
    /// Memory cycles to decode everything.
    pub decode_cycles: u64,
    /// Memory cycles the datapath needs (supplied by the caller).
    pub datapath_cycles: u64,
    /// The binding resource.
    pub bound: FrontEndBound,
}

impl ControllerReport {
    /// Front-end overhead relative to the datapath (`>1` means the
    /// front-end throttles the unit).
    pub fn overhead(&self) -> f64 {
        let fe = self.wire_cycles.max(self.decode_cycles) as f64;
        fe / self.datapath_cycles.max(1) as f64
    }
}

/// Analyzes `program` plus `candidates` runtime-generated instruction
/// bursts against the controller rates, where the datapath needs
/// `datapath_cycles` memory cycles.
pub fn analyze(
    config: &ControllerConfig,
    program: &Program,
    candidates: usize,
    datapath_cycles: u64,
) -> ControllerReport {
    let host_instructions = program.len();
    let generated_instructions = candidates * config.insts_per_candidate;
    // Wire: only host instructions cross the channel; generated ones are
    // created on-DIMM. BARRIER/NOP frames are still one slot each.
    let wire_cycles =
        (host_instructions as f64 / config.frame_slots_per_cycle).ceil() as u64;
    // Decode: everything passes the decoder.
    let total = host_instructions + generated_instructions;
    let decode_cycles =
        (total as f64 / config.decode_per_cycle as f64).ceil() as u64 * config.clock_ratio;
    let fe = wire_cycles.max(decode_cycles);
    let bound = if fe <= datapath_cycles {
        FrontEndBound::Datapath
    } else if wire_cycles >= decode_cycles {
        FrontEndBound::Wire
    } else {
        FrontEndBound::Decode
    };
    ControllerReport {
        host_instructions,
        generated_instructions,
        wire_cycles,
        decode_cycles,
        datapath_cycles,
        bound,
    }
}

/// Counts the FILTER/BARRIER synchronization points of a program — the
/// places the controller must drain the FIFO before proceeding.
pub fn sync_points(program: &Program) -> usize {
    program
        .iter()
        .filter(|i| matches!(i, Instruction::Barrier | Instruction::Filter { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnmcConfig;
    use crate::unit::{RankJob, RankUnit, UnitParams};
    use enmc_compiler::{lower_screening, MemoryLayout, TaskDescriptor, Tiling};

    fn paper_setup(l: usize, batch: usize) -> (Program, usize, u64, usize) {
        let task = TaskDescriptor::paper_default(l, 512, batch);
        let layout = MemoryLayout::for_task(&task);
        let program = lower_screening(&task, &layout, 256).expect("compiles");
        let tiling = Tiling::new(&task, 256).expect("tiles");
        // Per-candidate: tiles_per_row LDR+MULADD pairs + MOVE.
        let ipc = tiling.tiles_per_row * 2 + 1;
        let candidates = l / 20;
        let unit = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
        let report = unit.simulate(&RankJob {
            categories: l,
            hidden: 512,
            reduced: 128,
            batch,
            candidates_per_item: vec![candidates / batch.max(1); batch],
        });
        (program, ipc, report.dram_cycles, candidates)
    }

    #[test]
    fn front_end_never_bounds_the_paper_config() {
        // The paper's design premise: instruction delivery is not the
        // bottleneck. Verify for a rank-sized slice at batch 1 and 4.
        for batch in [1usize, 4] {
            let (program, ipc, datapath, candidates) = paper_setup(4184, batch);
            let cfg = ControllerConfig::table3(ipc);
            let r = analyze(&cfg, &program, candidates, datapath);
            assert_eq!(r.bound, FrontEndBound::Datapath, "batch {batch}: {r:?}");
            assert!(r.overhead() < 1.0, "overhead {}", r.overhead());
        }
    }

    #[test]
    fn starved_decoder_is_detected() {
        let (program, ipc, _, candidates) = paper_setup(4184, 1);
        let mut cfg = ControllerConfig::table3(ipc);
        cfg.clock_ratio = 300; // absurdly slow decoder clock
        let r = analyze(&cfg, &program, candidates, 1000);
        assert_eq!(r.bound, FrontEndBound::Decode);
        assert!(r.overhead() > 1.0);
    }

    #[test]
    fn narrow_wire_is_detected() {
        let (program, ipc, _, candidates) = paper_setup(4184, 1);
        let mut cfg = ControllerConfig::table3(ipc);
        cfg.frame_slots_per_cycle = 0.0001;
        let r = analyze(&cfg, &program, candidates, 1000);
        assert_eq!(r.bound, FrontEndBound::Wire);
    }

    #[test]
    fn generated_instructions_counted() {
        let (program, ipc, datapath, candidates) = paper_setup(2048, 1);
        let cfg = ControllerConfig::table3(ipc);
        let r = analyze(&cfg, &program, candidates, datapath);
        assert_eq!(r.generated_instructions, candidates * ipc);
        assert!(r.host_instructions > 0);
    }

    #[test]
    fn sync_points_match_batch() {
        let task = TaskDescriptor::paper_default(1024, 64, 3);
        let layout = MemoryLayout::for_task(&task);
        let program = lower_screening(&task, &layout, 256).expect("compiles");
        // One FILTER + one BARRIER per batch item.
        assert_eq!(sync_points(&program), 6);
    }
}
