//! Steady-state serving model: queries arrive continuously, queue at the
//! memory system, and are served in batches.
//!
//! The paper evaluates single-job latency; a deployed classifier serves a
//! *stream* of queries. This module closes that gap with a deterministic
//! discrete-event queueing model on top of the rank-unit simulator:
//! arrivals at a fixed rate, a batching window that groups up to
//! `max_batch` waiting queries (batch reuse is where ENMC's weight stream
//! amortizes), and service times taken from the cycle-level simulation.
//! Outputs: sustainable QPS, mean/95th-percentile latency, and the
//! saturation point where the queue diverges.

use crate::unit::{RankJob, RankUnit};

/// Serving configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeConfig {
    /// Query arrival period in nanoseconds (1/λ).
    pub arrival_period_ns: f64,
    /// Largest batch the scheduler will form.
    pub max_batch: usize,
    /// Queries to simulate.
    pub queries: usize,
}

/// Serving-latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Queries served.
    pub served: usize,
    /// Mean end-to-end latency (queueing + service), ns.
    pub mean_ns: f64,
    /// 95th-percentile latency, ns.
    pub p95_ns: f64,
    /// Achieved throughput in queries/second.
    pub qps: f64,
    /// `true` if the queue kept growing (offered load beyond capacity).
    pub saturated: bool,
    /// Mean batch size the scheduler formed.
    pub mean_batch: f64,
}

/// Simulates serving under `config`, with per-batch service times from the
/// rank-unit model for `template` (its `batch` field is overridden).
///
/// Service times for each batch size are obtained once from the
/// cycle-level simulator and reused — arrivals don't change the memory
/// behaviour of a batch, only its start time.
///
/// # Panics
///
/// Panics if `config.queries == 0` or `config.max_batch == 0`.
pub fn serve(unit: &RankUnit, template: &RankJob, config: &ServeConfig) -> ServeReport {
    assert!(config.queries > 0, "need at least one query");
    assert!(config.max_batch > 0, "batch limit must be positive");

    // Pre-simulate service time for each batch size.
    let per_query_cands = template.candidates_per_item.first().copied().unwrap_or(0);
    let service_ns: Vec<f64> = (1..=config.max_batch)
        .map(|b| {
            let job = RankJob {
                categories: template.categories,
                hidden: template.hidden,
                reduced: template.reduced,
                batch: b,
                candidates_per_item: vec![per_query_cands; b],
            };
            unit.simulate(&job).ns
        })
        .collect();

    // Event loop: queries arrive at fixed cadence; the engine grabs all
    // waiting queries (up to max_batch) whenever it goes idle.
    let mut engine_free_at = 0.0_f64;
    let mut next_arrival = 0usize; // index of next query not yet enqueued
    let mut latencies: Vec<f64> = Vec::with_capacity(config.queries);
    let mut batches = 0usize;
    let arrival_time = |i: usize| i as f64 * config.arrival_period_ns;

    while latencies.len() < config.queries {
        // The engine starts its next batch when it is free AND at least
        // one query has arrived.
        let first_waiting = next_arrival;
        let start = engine_free_at.max(arrival_time(first_waiting));
        // Everything that has arrived by `start` joins, up to the cap.
        let mut batch = 0usize;
        while next_arrival < config.queries
            && batch < config.max_batch
            && arrival_time(next_arrival) <= start
        {
            next_arrival += 1;
            batch += 1;
        }
        let batch = batch.max(1);
        if next_arrival == first_waiting {
            // start == arrival of first_waiting exactly; claim it.
            next_arrival += 1;
        }
        let svc = service_ns[batch - 1];
        let done = start + svc;
        for q in first_waiting..first_waiting + batch {
            latencies.push(done - arrival_time(q));
        }
        engine_free_at = done;
        batches += 1;
    }
    latencies.truncate(config.queries);

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let p95 = sorted[(sorted.len() as f64 * 0.95) as usize - 1];
    let makespan = engine_free_at.max(arrival_time(config.queries - 1));
    // Saturation heuristic: compare early vs late arrivals' latencies (the
    // `latencies` vector is in arrival order). A stable queue has a
    // stationary latency; a diverging one grows roughly linearly, so the
    // last fifth waits far longer than the first fifth.
    let saturated = {
        let fifth = (latencies.len() / 5).max(1);
        let first: f64 = latencies[..fifth].iter().sum::<f64>() / fifth as f64;
        let last: f64 =
            latencies[latencies.len() - fifth..].iter().sum::<f64>() / fifth as f64;
        last > 3.0 * first
    };
    ServeReport {
        served: config.queries,
        mean_ns: mean,
        p95_ns: p95,
        qps: config.queries as f64 / makespan * 1e9,
        saturated,
        mean_batch: config.queries as f64 / batches as f64,
    }
}

/// Finds the smallest arrival period (highest load) the unit can serve
/// without saturating, by bisection over `probe_queries` query runs.
pub fn saturation_period_ns(
    unit: &RankUnit,
    template: &RankJob,
    max_batch: usize,
    probe_queries: usize,
) -> f64 {
    // Upper bound: the single-query service time (trivially stable).
    let mut job1 = template.clone();
    job1.batch = 1;
    job1.candidates_per_item =
        vec![template.candidates_per_item.first().copied().unwrap_or(0)];
    let mut hi = unit.simulate(&job1).ns * 2.0;
    let mut lo = hi / 64.0;
    for _ in 0..10 {
        let mid = (lo + hi) / 2.0;
        let r = serve(
            unit,
            template,
            &ServeConfig { arrival_period_ns: mid, max_batch, queries: probe_queries },
        );
        if r.saturated {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnmcConfig;
    use crate::unit::UnitParams;

    fn unit() -> RankUnit {
        RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()))
    }

    fn template() -> RankJob {
        RankJob {
            categories: 1024,
            hidden: 256,
            reduced: 64,
            batch: 1,
            candidates_per_item: vec![16],
        }
    }

    #[test]
    fn light_load_latency_is_service_time() {
        let u = unit();
        let t = template();
        let svc = u.simulate(&t).ns;
        let r = serve(
            &u,
            &t,
            &ServeConfig { arrival_period_ns: svc * 10.0, max_batch: 4, queries: 50 },
        );
        assert!(!r.saturated);
        // No queueing: every query is served alone right away.
        assert!((r.mean_ns - svc).abs() / svc < 0.05, "mean {} vs svc {svc}", r.mean_ns);
        assert!((r.mean_batch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_load_saturates() {
        let u = unit();
        let t = template();
        let svc = u.simulate(&t).ns;
        let r = serve(
            &u,
            &t,
            // Arrivals far faster than even perfect batching can absorb.
            &ServeConfig { arrival_period_ns: svc / 100.0, max_batch: 2, queries: 200 },
        );
        assert!(r.saturated, "{r:?}");
        assert!(r.p95_ns > r.mean_ns);
    }

    #[test]
    fn batching_raises_sustainable_throughput() {
        let u = unit();
        let t = template();
        let p1 = saturation_period_ns(&u, &t, 1, 100);
        let p4 = saturation_period_ns(&u, &t, 4, 100);
        // With batch-4 weight-stream reuse the unit absorbs faster
        // arrivals (smaller stable period).
        assert!(p4 < p1, "batch4 {p4} vs batch1 {p1}");
    }

    #[test]
    fn moderate_load_forms_batches() {
        let u = unit();
        let t = template();
        let svc = u.simulate(&t).ns;
        let r = serve(
            &u,
            &t,
            // Slightly past the batch-1 service rate: stable only because
            // batching absorbs the excess.
            &ServeConfig { arrival_period_ns: svc / 1.3, max_batch: 4, queries: 200 },
        );
        assert!(!r.saturated, "{r:?}");
        assert!(r.mean_batch > 1.1, "mean batch {}", r.mean_batch);
        assert!(r.qps > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_rejected() {
        serve(
            &unit(),
            &template(),
            &ServeConfig { arrival_period_ns: 1.0, max_batch: 1, queries: 0 },
        );
    }
}
