//! Whole-system composition: a classification job over 8 channels × 8
//! ranks of ENMC DIMMs (Table 3), or over the CPU / NMP baselines.
//!
//! The classifier is partitioned row-wise across the 64 rank-units; every
//! unit screens its slice and computes the candidates that fall in it.
//! Rank-units are symmetric and independent (each has its own DRAM timing
//! domain), so system latency is one representative rank's latency — the
//! candidate load is spread uniformly by the partitioning.

use crate::baseline::{BaselineKind, NmpBaseline};
use crate::config::EnmcConfig;
use crate::cpu::CpuModel;
use crate::energy::{LogicEnergyModel, SystemEnergy};
use crate::unit::{RankJob, RankUnit, UnitParams, UnitReport};
use enmc_dram::energy::EnergyModel;
use enmc_dram::DramStats;
use enmc_mem::{MemPreset, MemTech};
use enmc_obs::trace::TraceBuffer;
use enmc_par::SimConfig;

/// DRAM channels in the Table 3 platform; rank-units spread evenly
/// across them (8 ranks per channel for ENMC). Cost attribution groups
/// per-shard statistics into this many channel buckets.
pub const CHANNELS: usize = 8;

/// Table 4 logic-power totals for the homogeneous-FP32 NMP baselines,
/// in milliwatts per unit.
fn baseline_total_mw(kind: BaselineKind) -> f64 {
    match kind {
        BaselineKind::Nda => 293.6,
        BaselineKind::Chameleon => 249.0,
        BaselineKind::TensorDimm => 303.5,
        BaselineKind::TensorDimmLarge => 303.5 * 2.5,
    }
}

/// A classification job at system scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassificationJob {
    /// Total categories `l`.
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Reduced dimension `k`.
    pub reduced: usize,
    /// Batch size.
    pub batch: usize,
    /// Total candidates per batch item (across all ranks).
    pub candidates: usize,
}

impl ClassificationJob {
    /// The same workload shape at a different serving load point:
    /// `batch` concurrent requests, each screened down to `candidates`
    /// survivors. Categories and dimensions are untouched, so a serving
    /// simulator can sweep batch size × degrade tier without re-deriving
    /// the model shape.
    pub fn with_load(&self, batch: usize, candidates: usize) -> Self {
        ClassificationJob { batch: batch.max(1), candidates: candidates.max(1), ..*self }
    }

    /// The slice of this job one of `ranks` symmetric units executes.
    pub fn rank_slice(&self, ranks: usize) -> RankJob {
        RankJob {
            categories: self.categories.div_ceil(ranks).max(1),
            hidden: self.hidden,
            reduced: self.reduced,
            batch: self.batch,
            candidates_per_item: vec![self.candidates.div_ceil(ranks); self.batch],
        }
    }

    /// The exact per-rank slices of this job across `ranks` symmetric
    /// units: every category and every candidate lands in exactly one
    /// slice (earlier ranks absorb the remainders).
    ///
    /// Unlike [`ClassificationJob::rank_slice`] — which rounds the load up
    /// to a representative worst-rank slice — the returned jobs partition
    /// the work with no duplication, so simulating all of them yields the
    /// whole system's traffic. When the job has fewer categories than
    /// ranks, only `categories` non-empty slices are returned.
    pub fn rank_jobs(&self, ranks: usize) -> Vec<RankJob> {
        let cat_ranges = enmc_par::shard_ranges(self.categories, ranks);
        let cand_ranges = enmc_par::shard_ranges(self.candidates, cat_ranges.len().max(1));
        cat_ranges
            .iter()
            .enumerate()
            .map(|(r, cats)| RankJob {
                categories: cats.len(),
                hidden: self.hidden,
                reduced: self.reduced,
                batch: self.batch,
                candidates_per_item: vec![
                    cand_ranges.get(r).map_or(0, |c| c.len());
                    self.batch
                ],
            })
            .collect()
    }

    /// The *worst* rank's slice when candidates skew toward popular
    /// categories instead of spreading uniformly. With round-robin row
    /// interleaving across ranks a Zipf-`s` popularity still lands the
    /// hottest rank roughly `1 + skew` times the mean candidate load;
    /// system latency follows that straggler.
    ///
    /// # Panics
    ///
    /// Panics if `skew` is negative.
    pub fn rank_slice_skewed(&self, ranks: usize, skew: f64) -> RankJob {
        assert!(skew >= 0.0, "skew must be non-negative");
        let mean = self.candidates as f64 / ranks as f64;
        let hot = (mean * (1.0 + skew)).ceil() as usize;
        RankJob {
            categories: self.categories.div_ceil(ranks).max(1),
            hidden: self.hidden,
            reduced: self.reduced,
            batch: self.batch,
            candidates_per_item: vec![hot; self.batch],
        }
    }
}

/// Which scheme executed a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// Host CPU running full classification (the normalization baseline).
    CpuFull,
    /// Host CPU running approximate screening + candidates.
    CpuScreened,
    /// An NMP baseline running approximate screening.
    Baseline(BaselineKind),
    /// The ENMC architecture.
    Enmc,
}

/// Result of running a job under one scheme.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchemeResult {
    /// The scheme.
    pub scheme: Scheme,
    /// Wall-clock latency in nanoseconds for the whole batch.
    pub ns: f64,
    /// Energy breakdown (absent for the analytic CPU model).
    pub energy: Option<SystemEnergy>,
    /// Per-rank simulation report (absent for the CPU).
    pub rank_report: Option<UnitReport>,
}

impl SchemeResult {
    /// Speedup of this result relative to `baseline`.
    pub fn speedup_over(&self, baseline: &SchemeResult) -> f64 {
        baseline.ns / self.ns
    }
}

/// Result of a sharded full-system run ([`SystemModel::run_sharded`]):
/// the scheme result plus the host-side parallel execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRun {
    /// The merged scheme result (bit-identical for any worker count).
    pub result: SchemeResult,
    /// Worker threads the run executed on.
    pub workers: usize,
    /// Independent job shards simulated.
    pub shards: usize,
    /// Host wall-clock nanoseconds of the parallel region.
    pub wall_ns: f64,
    /// Summed per-shard host wall time (the sequential-equivalent cost).
    pub shard_wall_ns: f64,
    /// Per-shard DRAM statistics in rank order (empty for analytic CPU
    /// schemes). The shard decomposition is fixed by the workload, so
    /// this vector is bit-identical for any worker count — it is the
    /// per-channel/per-rank input to cost attribution.
    pub shard_dram: Vec<DramStats>,
}

impl ShardedRun {
    /// Observed parallel speedup: summed shard time over region wall
    /// time. Approximately 1.0 on one worker.
    pub fn speedup(&self) -> f64 {
        if self.wall_ns > 0.0 {
            self.shard_wall_ns / self.wall_ns
        } else {
            1.0
        }
    }
}

/// The complete evaluation platform: CPU model + rank-unit models.
#[derive(Debug, Clone)]
pub struct SystemModel {
    cpu: CpuModel,
    enmc: EnmcConfig,
    /// Rank-units in the system (Table 3: 8 channels × 8 ranks).
    pub total_ranks: usize,
    /// Per-rank DRAM energy model applied to every simulated scheme
    /// (the memory preset's nominal model; the fault subsystem swaps in
    /// relaxed-refresh / ECC-surcharged variants via
    /// [`SystemModel::with_energy_model`]).
    energy_model: EnergyModel,
    /// The memory-technology preset every simulated rank runs on
    /// (timing domain + energy coefficients + error profile). Defaults
    /// to the Table 3 DDR4 baseline, which is bit-exact with the
    /// pre-preset platform.
    mem: MemPreset,
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::table3()
    }
}

impl SystemModel {
    /// The paper's evaluation platform.
    pub fn table3() -> Self {
        SystemModel {
            cpu: CpuModel::xeon_8280(),
            enmc: EnmcConfig::table3(),
            total_ranks: 64,
            energy_model: EnergyModel::ddr4_2400_rank(1),
            mem: MemPreset::ddr4_2666(),
        }
    }

    /// Returns the model re-based on a memory-technology preset: the
    /// simulated ranks' DRAM timing domain, the per-rank energy model,
    /// and the error profile all switch to `tech`. Call before any
    /// [`SystemModel::with_energy_model`] fault override — this resets
    /// the energy model to the preset's nominal one.
    pub fn with_memory(mut self, tech: MemTech) -> Self {
        self.mem = tech.preset();
        self.energy_model = self.mem.energy_model(1);
        self
    }

    /// The memory-technology preset in use.
    pub fn memory(&self) -> &MemPreset {
        &self.mem
    }

    /// Returns the model with a different per-rank ENMC logic
    /// configuration — the design-space tuner's lever for lane count and
    /// screener bitwidth. Every subsequent run simulates with
    /// [`UnitParams::enmc`] over this configuration.
    pub fn with_enmc_config(mut self, cfg: EnmcConfig) -> Self {
        self.enmc = cfg;
        self
    }

    /// Returns the model with a different rank-unit count (the tuner's
    /// capacity axis; Table 3 ships 64).
    pub fn with_total_ranks(mut self, ranks: usize) -> Self {
        self.total_ranks = ranks.max(1);
        self
    }

    /// The per-rank ENMC logic configuration in use.
    pub fn enmc_config(&self) -> &EnmcConfig {
        &self.enmc
    }

    /// Returns the model with a different per-rank DRAM energy model
    /// (`ranks` is ignored; the system always scales a one-rank model by
    /// `total_ranks`).
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = EnergyModel { ranks: 1, ..model };
        self
    }

    /// The per-rank DRAM energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// The CPU model in use.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// The per-rank unit parameters an ENMC run simulates with — the
    /// exact configuration [`SystemModel::run`] hands to [`RankUnit`],
    /// exposed so surrogate fits anchor on the same simulator.
    pub fn enmc_unit_params(&self) -> UnitParams {
        UnitParams::enmc_on(&self.enmc, self.mem.single_rank_config(), self.mem.io_mhz())
    }

    /// The logic-power model a simulated scheme draws per unit (`None`
    /// for the analytic CPU schemes, which model no NMP logic).
    pub fn logic_energy_model(&self, scheme: Scheme) -> Option<LogicEnergyModel> {
        match scheme {
            Scheme::Enmc => Some(LogicEnergyModel::enmc_table5()),
            Scheme::Baseline(kind) => {
                Some(LogicEnergyModel::baseline(baseline_total_mw(kind)))
            }
            Scheme::CpuFull | Scheme::CpuScreened => None,
        }
    }

    /// Runs `job` under `scheme`.
    pub fn run(&self, job: &ClassificationJob, scheme: Scheme) -> SchemeResult {
        self.run_traced(job, scheme, None)
    }

    /// [`SystemModel::run`] with an optional trace collector for the
    /// simulated schemes. One representative rank-unit is traced (they are
    /// symmetric); the analytic CPU schemes emit nothing.
    pub fn run_traced(
        &self,
        job: &ClassificationJob,
        scheme: Scheme,
        trace: Option<&mut TraceBuffer>,
    ) -> SchemeResult {
        self.run_checked(job, scheme, trace, false)
    }

    /// [`SystemModel::run_traced`] with the DDR4 protocol conformance
    /// checker optionally attached to the simulated rank's DRAM
    /// controller (analytic CPU schemes have no DRAM to check).
    pub fn run_checked(
        &self,
        job: &ClassificationJob,
        scheme: Scheme,
        trace: Option<&mut TraceBuffer>,
        check_protocol: bool,
    ) -> SchemeResult {
        match scheme {
            Scheme::CpuFull => SchemeResult {
                scheme,
                ns: self.cpu.full_classification_ns(job.categories, job.hidden, job.batch),
                energy: None,
                rank_report: None,
            },
            Scheme::CpuScreened => SchemeResult {
                scheme,
                ns: self.cpu.screened_classification_ns(
                    job.categories,
                    job.hidden,
                    job.reduced,
                    job.candidates,
                    4,
                    job.batch,
                ),
                energy: None,
                rank_report: None,
            },
            Scheme::Enmc => {
                let unit = RankUnit::new(self.enmc_unit_params());
                let report =
                    unit.simulate_checked(&job.rank_slice(self.total_ranks), trace, check_protocol);
                let energy = SystemEnergy::from_rank(
                    &report,
                    self.total_ranks,
                    &self.energy_model,
                    &LogicEnergyModel::enmc_table5(),
                );
                SchemeResult {
                    scheme,
                    ns: report.ns,
                    energy: Some(energy),
                    rank_report: Some(report),
                }
            }
            Scheme::Baseline(kind) => {
                let baseline = NmpBaseline::new(kind);
                // "Large" variants deploy more rank-units per channel.
                let units = kind.config().units_per_channel * 8;
                let report =
                    baseline.unit().simulate_checked(&job.rank_slice(units), trace, check_protocol);
                // Energy scales with the number of units actually deployed
                // (TensorDIMM-Large doubles them).
                let energy = SystemEnergy::from_rank(
                    &report,
                    units,
                    &self.energy_model,
                    &LogicEnergyModel::baseline(baseline_total_mw(kind)),
                );
                SchemeResult {
                    scheme,
                    ns: report.ns,
                    energy: Some(energy),
                    rank_report: Some(report),
                }
            }
        }
    }

    /// Runs `job` with **every** rank-unit simulated on its exact job
    /// slice (no representative-rank shortcut), the slices executed on
    /// the worker pool `cfg` requests.
    ///
    /// The shard decomposition is fixed by the workload
    /// ([`ClassificationJob::rank_jobs`]) and the reports merge in rank
    /// order ([`UnitReport::merge_parallel`]), so the result is
    /// bit-identical for any worker count — threads only change the
    /// wall-clock time recorded in the returned [`ShardedRun`]. Analytic
    /// CPU schemes have nothing to shard and run as a single unit of
    /// work.
    pub fn run_sharded(&self, job: &ClassificationJob, scheme: Scheme, cfg: &SimConfig) -> ShardedRun {
        let workers = cfg.worker_count();
        let sharded_units = match scheme {
            Scheme::Enmc => Some((self.enmc_unit_params(), self.total_ranks, LogicEnergyModel::enmc_table5())),
            Scheme::Baseline(kind) => {
                let units = kind.config().units_per_channel * 8;
                Some((
                    *NmpBaseline::new(kind).unit().params(),
                    units,
                    LogicEnergyModel::baseline(baseline_total_mw(kind)),
                ))
            }
            Scheme::CpuFull | Scheme::CpuScreened => None,
        };
        let Some((params, units, logic_model)) = sharded_units else {
            let wall = std::time::Instant::now();
            let result = self.run(job, scheme);
            let wall_ns = wall.elapsed().as_secs_f64() * 1e9;
            return ShardedRun {
                result,
                workers: 1,
                shards: 1,
                wall_ns,
                shard_wall_ns: wall_ns,
                shard_dram: Vec::new(),
            };
        };

        let jobs = job.rank_jobs(units);
        let shards = jobs.len();
        let check = cfg.check_protocol;
        let wall = std::time::Instant::now();
        // Symmetric sharding yields at most a handful of distinct rank
        // slices (remainder categories and candidates land on the
        // earliest ranks); the unit simulator is deterministic, so each
        // distinct slice simulates once and every rank sharing it reuses
        // the report bit-identically.
        let mut slice_index: std::collections::BTreeMap<_, usize> = std::collections::BTreeMap::new();
        let mut unique: Vec<RankJob> = Vec::new();
        let mut slot: Vec<usize> = Vec::with_capacity(jobs.len());
        for j in jobs {
            let key =
                (j.categories, j.hidden, j.reduced, j.batch, j.candidates_per_item.clone());
            let i = *slice_index.entry(key).or_insert_with(|| {
                unique.push(j);
                unique.len() - 1
            });
            slot.push(i);
        }
        let per_unique: Vec<(UnitReport, f64)> = enmc_par::par_map(workers, unique, |_, rank_job| {
            let shard_wall = std::time::Instant::now();
            let report = RankUnit::new(params).simulate_checked(&rank_job, None, check);
            (report, shard_wall.elapsed().as_secs_f64() * 1e9)
        });
        let wall_ns = wall.elapsed().as_secs_f64() * 1e9;
        // Host-side work per simulated slice; replicated ranks cost
        // nothing on the host.
        let shard_wall_ns: f64 = per_unique.iter().map(|(_, ns)| ns).sum();
        let reports: Vec<UnitReport> = slot.iter().map(|&i| per_unique[i].0.clone()).collect();
        let merged = UnitReport::merge_parallel(&reports);
        // Every rank's own activity and always-on window, summed exactly.
        let dram_model = self.energy_model;
        let mut energy = SystemEnergy::default();
        for r in &reports {
            let e = SystemEnergy::from_rank(r, 1, &dram_model, &logic_model);
            energy.dram_static_nj += e.dram_static_nj;
            energy.dram_access_nj += e.dram_access_nj;
            energy.logic_nj += e.logic_nj;
        }
        let shard_dram: Vec<DramStats> = reports.iter().map(|r| r.dram).collect();
        let result = SchemeResult {
            scheme,
            ns: merged.ns,
            energy: Some(energy),
            rank_report: Some(merged),
        };
        ShardedRun { result, workers, shards, wall_ns, shard_wall_ns, shard_dram }
    }

    /// Runs `job` on ENMC with candidate load imbalance `skew` (system
    /// latency = the straggler rank).
    pub fn run_enmc_skewed(&self, job: &ClassificationJob, skew: f64) -> SchemeResult {
        let unit = RankUnit::new(self.enmc_unit_params());
        let report = unit.simulate(&job.rank_slice_skewed(self.total_ranks, skew));
        let energy = SystemEnergy::from_rank(
            &report,
            self.total_ranks,
            &self.energy_model,
            &LogicEnergyModel::enmc_table5(),
        );
        SchemeResult { scheme: Scheme::Enmc, ns: report.ns, energy: Some(energy), rank_report: Some(report) }
    }

    /// Runs the Fig. 13 scheme set on one job, returning results in the
    /// paper's order: CPU-screened, NDA, Chameleon, TensorDIMM, ENMC —
    /// all normalized against CPU-full by the caller.
    pub fn run_figure13_schemes(&self, job: &ClassificationJob) -> Vec<SchemeResult> {
        let mut out = vec![self.run(job, Scheme::CpuScreened)];
        for kind in BaselineKind::figure13() {
            out.push(self.run(job, Scheme::Baseline(kind)));
        }
        out.push(self.run(job, Scheme::Enmc));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> ClassificationJob {
        // A Transformer-W268K-like shape, scaled so tests stay fast: each
        // rank still sees thousands of categories.
        ClassificationJob {
            categories: 262_144,
            hidden: 512,
            reduced: 128,
            batch: 1,
            candidates: 262_144 / 20, // ~5% of rows need exact compute
        }
    }

    #[test]
    fn with_load_rescales_only_the_load_axes() {
        let j = job();
        let scaled = j.with_load(8, 1000);
        assert_eq!(scaled.batch, 8);
        assert_eq!(scaled.candidates, 1000);
        assert_eq!(scaled.categories, j.categories);
        assert_eq!(scaled.hidden, j.hidden);
        assert_eq!(scaled.reduced, j.reduced);
        // Degenerate loads clamp to one rather than producing empty jobs.
        let empty = j.with_load(0, 0);
        assert_eq!((empty.batch, empty.candidates), (1, 1));
    }

    #[test]
    fn rank_slice_partitions_evenly() {
        let j = job();
        let slice = j.rank_slice(64);
        assert_eq!(slice.categories, 4096);
        assert_eq!(slice.candidates_per_item, vec![205]);
    }

    #[test]
    fn rank_jobs_partition_exactly() {
        let j = job();
        for ranks in [1usize, 7, 64] {
            let jobs = j.rank_jobs(ranks);
            assert_eq!(jobs.len(), ranks);
            let cats: usize = jobs.iter().map(|r| r.categories).sum();
            let cands: usize = jobs.iter().map(|r| r.candidates_per_item[0]).sum();
            assert_eq!(cats, j.categories, "{ranks} ranks drop/duplicate categories");
            assert_eq!(cands, j.candidates, "{ranks} ranks drop/duplicate candidates");
            let max = jobs.iter().map(|r| r.categories).max().unwrap();
            let min = jobs.iter().map(|r| r.categories).min().unwrap();
            assert!(max - min <= 1, "unbalanced category split");
        }
        // Degenerate: more ranks than categories → one category each.
        let tiny = ClassificationJob { categories: 3, hidden: 8, reduced: 4, batch: 1, candidates: 2 };
        let jobs = tiny.rank_jobs(64);
        assert_eq!(jobs.len(), 3);
        assert!(jobs.iter().all(|r| r.categories == 1));
        assert_eq!(jobs.iter().map(|r| r.candidates_per_item[0]).sum::<usize>(), 2);
    }

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 32_768, hidden: 128, reduced: 32, batch: 1, candidates: 512 }
    }

    #[test]
    fn sharded_run_is_bit_identical_across_worker_counts() {
        let sys = SystemModel::table3();
        let j = small_job();
        let seq = sys.run_sharded(&j, Scheme::Enmc, &enmc_par::SimConfig::sequential());
        assert_eq!(seq.workers, 1);
        assert_eq!(seq.shards, 64);
        for threads in [2usize, 4] {
            let par = sys.run_sharded(&j, Scheme::Enmc, &enmc_par::SimConfig::with_threads(threads));
            assert_eq!(par.workers, threads);
            assert_eq!(seq.result, par.result, "{threads} threads diverge");
        }
    }

    #[test]
    fn sharded_run_covers_the_whole_system() {
        let sys = SystemModel::table3();
        let j = small_job();
        let sharded = sys.run_sharded(&j, Scheme::Enmc, &enmc_par::SimConfig::sequential());
        let representative = sys.run(&j, Scheme::Enmc);
        let merged = sharded.result.rank_report.expect("simulated");
        let one = representative.rank_report.expect("simulated");
        // All 64 ranks' screening traffic ≈ 64× the representative rank's
        // (exact split vs div_ceil rounding makes it ≤).
        assert!(merged.screen_bytes > 32 * one.screen_bytes);
        assert!(merged.screen_bytes <= 64 * one.screen_bytes);
        // Latency is a straggler, not a sum.
        assert!(sharded.result.ns < 2.0 * representative.ns);
        assert!(sharded.result.ns > 0.5 * representative.ns);
        // Phase boundaries still tile the headline cycle count.
        assert!(merged.screen_done_cycle <= merged.exec_done_cycle);
        assert!(merged.exec_done_cycle <= merged.dram_cycles);
    }

    #[test]
    fn sharded_cpu_schemes_fall_back_to_analytic() {
        let sys = SystemModel::table3();
        let j = small_job();
        let run = sys.run_sharded(&j, Scheme::CpuFull, &enmc_par::SimConfig::with_threads(4));
        assert_eq!(run.shards, 1);
        assert_eq!(run.result.ns, sys.run(&j, Scheme::CpuFull).ns);
    }

    #[test]
    fn merge_parallel_picks_lowest_index_straggler() {
        use crate::unit::UnitReport;
        let mut a = UnitReport::default();
        a.dram_cycles = 100;
        a.ns = 1.0;
        a.screen_bytes = 10;
        let mut b = UnitReport::default();
        b.dram_cycles = 100;
        b.ns = 2.0;
        b.screen_bytes = 20;
        let m = UnitReport::merge_parallel(&[a, b]);
        assert_eq!(m.ns, 1.0, "tie must resolve to the first report");
        assert_eq!(m.screen_bytes, 30, "traffic must sum");
        let m2 = UnitReport::merge_parallel(&[b, a]);
        assert_eq!(m2.ns, 2.0);
    }

    #[test]
    fn enmc_beats_cpu_by_a_wide_margin() {
        let sys = SystemModel::table3();
        let j = job();
        let cpu = sys.run(&j, Scheme::CpuFull);
        let enmc = sys.run(&j, Scheme::Enmc);
        let speedup = enmc.speedup_over(&cpu);
        // Paper: ENMC delivers 56.5× average over CPU-full (55.5–600×
        // at batch 1). Accept a broad band around that.
        assert!(speedup > 20.0, "speedup {speedup}");
    }

    #[test]
    fn cpu_screening_alone_is_single_digit_speedup() {
        let sys = SystemModel::table3();
        let j = job();
        let full = sys.run(&j, Scheme::CpuFull);
        let screened = sys.run(&j, Scheme::CpuScreened);
        let s = screened.speedup_over(&full);
        assert!((3.0..16.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn enmc_beats_every_nmp_baseline() {
        let sys = SystemModel::table3();
        let j = job();
        let enmc = sys.run(&j, Scheme::Enmc);
        for kind in BaselineKind::figure13() {
            let b = sys.run(&j, Scheme::Baseline(kind));
            let adv = enmc.speedup_over(&b);
            assert!(adv > 1.5, "{:?}: only {adv}×", kind);
        }
    }

    #[test]
    fn enmc_energy_below_tensordimm() {
        let sys = SystemModel::table3();
        let j = job();
        let enmc = sys.run(&j, Scheme::Enmc).energy.expect("simulated");
        let td = sys.run(&j, Scheme::Baseline(BaselineKind::TensorDimm)).energy.expect("simulated");
        assert!(
            td.total_nj() > 2.0 * enmc.total_nj(),
            "TensorDIMM {} vs ENMC {}",
            td.total_nj(),
            enmc.total_nj()
        );
    }

    #[test]
    fn candidate_skew_slows_the_system() {
        let sys = SystemModel::table3();
        let j = job();
        let uniform = sys.run_enmc_skewed(&j, 0.0);
        let skewed = sys.run_enmc_skewed(&j, 1.0);
        assert!(skewed.ns > uniform.ns, "{} vs {}", skewed.ns, uniform.ns);
        // But the screening stream dominates, so even a 2x-hot rank costs
        // far less than 2x end-to-end.
        assert!(skewed.ns < 1.8 * uniform.ns, "{} vs {}", skewed.ns, uniform.ns);
    }

    #[test]
    fn relaxed_refresh_energy_model_reaches_the_per_rank_merge() {
        // Few ranks + a large slice each, so every rank's run spans several
        // tREFI windows and actually issues REF commands.
        let j = ClassificationJob {
            categories: 65_536,
            hidden: 256,
            reduced: 64,
            batch: 1,
            candidates: 512,
        };
        let mut nominal = SystemModel::table3();
        nominal.total_ranks = 2;
        let mut relaxed = nominal
            .clone()
            .with_energy_model(EnergyModel::ddr4_2400_rank(1).with_refresh_multiplier(8.0));
        relaxed.total_ranks = 2;
        let cfg = enmc_par::SimConfig::sequential();
        let e_nom = nominal.run_sharded(&j, Scheme::Enmc, &cfg).result.energy.unwrap();
        let e_rel = relaxed.run_sharded(&j, Scheme::Enmc, &cfg).result.energy.unwrap();
        // Refresh is static energy: relaxing it must cut the summed static
        // term of the per-rank merge while leaving access and logic alone.
        assert!(e_rel.dram_static_nj < e_nom.dram_static_nj, "{e_rel:?} vs {e_nom:?}");
        assert_eq!(e_rel.dram_access_nj, e_nom.dram_access_nj);
        assert_eq!(e_rel.logic_nj, e_nom.logic_nj);
        // The representative-rank path sees the same model.
        let r_nom = nominal.run(&j, Scheme::Enmc).energy.unwrap();
        let r_rel = relaxed.run(&j, Scheme::Enmc).energy.unwrap();
        assert!(r_rel.dram_static_nj < r_nom.dram_static_nj);
        // ECC surcharge lands in the merged access term instead.
        let mut ecc = nominal
            .clone()
            .with_energy_model(EnergyModel::ddr4_2400_rank(1).with_ecc_surcharge(0.4));
        ecc.total_ranks = 2;
        let e_ecc = ecc.run_sharded(&j, Scheme::Enmc, &cfg).result.energy.unwrap();
        assert!(e_ecc.dram_access_nj > e_nom.dram_access_nj);
        assert_eq!(e_ecc.dram_static_nj, e_nom.dram_static_nj);
    }

    #[test]
    fn run_traced_collects_events_for_simulated_schemes() {
        let sys = SystemModel::table3();
        let j = ClassificationJob {
            categories: 32_768,
            hidden: 128,
            reduced: 32,
            batch: 1,
            candidates: 256,
        };
        let mut tb = TraceBuffer::unbounded();
        let traced = sys.run_traced(&j, Scheme::Enmc, Some(&mut tb));
        assert!(!tb.is_empty(), "ENMC run must emit trace events");
        // Tracing must not change the answer.
        let plain = sys.run(&j, Scheme::Enmc);
        assert_eq!(plain.ns, traced.ns);
        // Analytic CPU schemes have nothing to trace.
        let mut cpu_tb = TraceBuffer::unbounded();
        sys.run_traced(&j, Scheme::CpuFull, Some(&mut cpu_tb));
        assert!(cpu_tb.is_empty());
    }

    #[test]
    fn default_memory_preset_is_bit_exact_with_table3() {
        let sys = SystemModel::table3();
        let explicit = SystemModel::table3().with_memory(MemTech::Ddr4_2666);
        let j = small_job();
        assert_eq!(sys.memory().tech, MemTech::Ddr4_2666);
        assert_eq!(sys.run(&j, Scheme::Enmc), explicit.run(&j, Scheme::Enmc));
        assert_eq!(sys.enmc_unit_params(), UnitParams::enmc(sys.enmc_config()));
    }

    #[test]
    fn memory_presets_change_results_but_stay_worker_invariant() {
        let j = small_job();
        let base = SystemModel::table3().run(&j, Scheme::Enmc);
        for tech in [MemTech::Ddr5_4800, MemTech::Lpddr4_3200, MemTech::Hbm2] {
            let sys = SystemModel::table3().with_memory(tech);
            let r = sys.run(&j, Scheme::Enmc);
            assert_ne!(r.ns, base.ns, "{tech} must differ from the baseline");
            let seq = sys.run_sharded(&j, Scheme::Enmc, &enmc_par::SimConfig::sequential());
            let par = sys.run_sharded(&j, Scheme::Enmc, &enmc_par::SimConfig::with_threads(4));
            assert_eq!(seq.result, par.result, "{tech} diverges across workers");
        }
    }

    #[test]
    fn hbm2_is_fastest_and_lpddr4_cheapest_on_the_stream() {
        let j = small_job();
        let run = |tech: MemTech| {
            let r = SystemModel::table3().with_memory(tech).run(&j, Scheme::Enmc);
            (r.ns, r.energy.expect("simulated").total_nj())
        };
        let (ns_d4, e_d4) = run(MemTech::Ddr4_2666);
        let (ns_hbm, _) = run(MemTech::Hbm2);
        let (_, e_lp) = run(MemTech::Lpddr4_3200);
        assert!(ns_hbm < ns_d4, "HBM2 {ns_hbm} vs DDR4 {ns_d4}");
        assert!(e_lp < e_d4, "LPDDR4 {e_lp} vs DDR4 {e_d4}");
    }

    #[test]
    fn protocol_check_is_clean_under_every_memory_preset() {
        let j = small_job();
        for tech in MemTech::ALL {
            let sys = SystemModel::table3().with_memory(tech);
            let r = sys.run_checked(&j, Scheme::Enmc, None, true);
            let report = r.rank_report.expect("simulated");
            assert_eq!(report.protocol_violations, 0, "{tech}");
        }
    }

    #[test]
    fn figure13_scheme_set_order() {
        let sys = SystemModel::table3();
        let results = sys.run_figure13_schemes(&ClassificationJob {
            categories: 32_768,
            hidden: 128,
            reduced: 32,
            batch: 1,
            candidates: 256,
        });
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].scheme, Scheme::CpuScreened);
        assert_eq!(results[4].scheme, Scheme::Enmc);
    }
}
