//! Whole-system composition: a classification job over 8 channels × 8
//! ranks of ENMC DIMMs (Table 3), or over the CPU / NMP baselines.
//!
//! The classifier is partitioned row-wise across the 64 rank-units; every
//! unit screens its slice and computes the candidates that fall in it.
//! Rank-units are symmetric and independent (each has its own DRAM timing
//! domain), so system latency is one representative rank's latency — the
//! candidate load is spread uniformly by the partitioning.

use crate::baseline::{BaselineKind, NmpBaseline};
use crate::config::EnmcConfig;
use crate::cpu::CpuModel;
use crate::energy::{LogicEnergyModel, SystemEnergy};
use crate::unit::{RankJob, RankUnit, UnitParams, UnitReport};
use enmc_dram::energy::EnergyModel;
use enmc_obs::trace::TraceBuffer;

/// A classification job at system scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassificationJob {
    /// Total categories `l`.
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Reduced dimension `k`.
    pub reduced: usize,
    /// Batch size.
    pub batch: usize,
    /// Total candidates per batch item (across all ranks).
    pub candidates: usize,
}

impl ClassificationJob {
    /// The slice of this job one of `ranks` symmetric units executes.
    pub fn rank_slice(&self, ranks: usize) -> RankJob {
        RankJob {
            categories: self.categories.div_ceil(ranks).max(1),
            hidden: self.hidden,
            reduced: self.reduced,
            batch: self.batch,
            candidates_per_item: vec![self.candidates.div_ceil(ranks); self.batch],
        }
    }

    /// The *worst* rank's slice when candidates skew toward popular
    /// categories instead of spreading uniformly. With round-robin row
    /// interleaving across ranks a Zipf-`s` popularity still lands the
    /// hottest rank roughly `1 + skew` times the mean candidate load;
    /// system latency follows that straggler.
    ///
    /// # Panics
    ///
    /// Panics if `skew` is negative.
    pub fn rank_slice_skewed(&self, ranks: usize, skew: f64) -> RankJob {
        assert!(skew >= 0.0, "skew must be non-negative");
        let mean = self.candidates as f64 / ranks as f64;
        let hot = (mean * (1.0 + skew)).ceil() as usize;
        RankJob {
            categories: self.categories.div_ceil(ranks).max(1),
            hidden: self.hidden,
            reduced: self.reduced,
            batch: self.batch,
            candidates_per_item: vec![hot; self.batch],
        }
    }
}

/// Which scheme executed a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// Host CPU running full classification (the normalization baseline).
    CpuFull,
    /// Host CPU running approximate screening + candidates.
    CpuScreened,
    /// An NMP baseline running approximate screening.
    Baseline(BaselineKind),
    /// The ENMC architecture.
    Enmc,
}

/// Result of running a job under one scheme.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchemeResult {
    /// The scheme.
    pub scheme: Scheme,
    /// Wall-clock latency in nanoseconds for the whole batch.
    pub ns: f64,
    /// Energy breakdown (absent for the analytic CPU model).
    pub energy: Option<SystemEnergy>,
    /// Per-rank simulation report (absent for the CPU).
    pub rank_report: Option<UnitReport>,
}

impl SchemeResult {
    /// Speedup of this result relative to `baseline`.
    pub fn speedup_over(&self, baseline: &SchemeResult) -> f64 {
        baseline.ns / self.ns
    }
}

/// The complete evaluation platform: CPU model + rank-unit models.
#[derive(Debug, Clone)]
pub struct SystemModel {
    cpu: CpuModel,
    enmc: EnmcConfig,
    /// Rank-units in the system (Table 3: 8 channels × 8 ranks).
    pub total_ranks: usize,
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::table3()
    }
}

impl SystemModel {
    /// The paper's evaluation platform.
    pub fn table3() -> Self {
        SystemModel { cpu: CpuModel::xeon_8280(), enmc: EnmcConfig::table3(), total_ranks: 64 }
    }

    /// The CPU model in use.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Runs `job` under `scheme`.
    pub fn run(&self, job: &ClassificationJob, scheme: Scheme) -> SchemeResult {
        self.run_traced(job, scheme, None)
    }

    /// [`SystemModel::run`] with an optional trace collector for the
    /// simulated schemes. One representative rank-unit is traced (they are
    /// symmetric); the analytic CPU schemes emit nothing.
    pub fn run_traced(
        &self,
        job: &ClassificationJob,
        scheme: Scheme,
        trace: Option<&mut TraceBuffer>,
    ) -> SchemeResult {
        match scheme {
            Scheme::CpuFull => SchemeResult {
                scheme,
                ns: self.cpu.full_classification_ns(job.categories, job.hidden, job.batch),
                energy: None,
                rank_report: None,
            },
            Scheme::CpuScreened => SchemeResult {
                scheme,
                ns: self.cpu.screened_classification_ns(
                    job.categories,
                    job.hidden,
                    job.reduced,
                    job.candidates,
                    4,
                    job.batch,
                ),
                energy: None,
                rank_report: None,
            },
            Scheme::Enmc => {
                let unit = RankUnit::new(UnitParams::enmc(&self.enmc));
                let report = unit.simulate_traced(&job.rank_slice(self.total_ranks), trace);
                let energy = SystemEnergy::from_rank(
                    &report,
                    self.total_ranks,
                    &EnergyModel::ddr4_2400_rank(1),
                    &LogicEnergyModel::enmc_table5(),
                );
                SchemeResult {
                    scheme,
                    ns: report.ns,
                    energy: Some(energy),
                    rank_report: Some(report),
                }
            }
            Scheme::Baseline(kind) => {
                let baseline = NmpBaseline::new(kind);
                // "Large" variants deploy more rank-units per channel.
                let units = kind.config().units_per_channel * 8;
                let report = baseline.unit().simulate_traced(&job.rank_slice(units), trace);
                let total_mw = match kind {
                    BaselineKind::Nda => 293.6,
                    BaselineKind::Chameleon => 249.0,
                    BaselineKind::TensorDimm => 303.5,
                    BaselineKind::TensorDimmLarge => 303.5 * 2.5,
                };
                // Energy scales with the number of units actually deployed
                // (TensorDIMM-Large doubles them).
                let energy = SystemEnergy::from_rank(
                    &report,
                    units,
                    &EnergyModel::ddr4_2400_rank(1),
                    &LogicEnergyModel::baseline(total_mw),
                );
                SchemeResult {
                    scheme,
                    ns: report.ns,
                    energy: Some(energy),
                    rank_report: Some(report),
                }
            }
        }
    }

    /// Runs `job` on ENMC with candidate load imbalance `skew` (system
    /// latency = the straggler rank).
    pub fn run_enmc_skewed(&self, job: &ClassificationJob, skew: f64) -> SchemeResult {
        let unit = RankUnit::new(UnitParams::enmc(&self.enmc));
        let report = unit.simulate(&job.rank_slice_skewed(self.total_ranks, skew));
        let energy = SystemEnergy::from_rank(
            &report,
            self.total_ranks,
            &EnergyModel::ddr4_2400_rank(1),
            &LogicEnergyModel::enmc_table5(),
        );
        SchemeResult { scheme: Scheme::Enmc, ns: report.ns, energy: Some(energy), rank_report: Some(report) }
    }

    /// Runs the Fig. 13 scheme set on one job, returning results in the
    /// paper's order: CPU-screened, NDA, Chameleon, TensorDIMM, ENMC —
    /// all normalized against CPU-full by the caller.
    pub fn run_figure13_schemes(&self, job: &ClassificationJob) -> Vec<SchemeResult> {
        let mut out = vec![self.run(job, Scheme::CpuScreened)];
        for kind in BaselineKind::figure13() {
            out.push(self.run(job, Scheme::Baseline(kind)));
        }
        out.push(self.run(job, Scheme::Enmc));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> ClassificationJob {
        // A Transformer-W268K-like shape, scaled so tests stay fast: each
        // rank still sees thousands of categories.
        ClassificationJob {
            categories: 262_144,
            hidden: 512,
            reduced: 128,
            batch: 1,
            candidates: 262_144 / 20, // ~5% of rows need exact compute
        }
    }

    #[test]
    fn rank_slice_partitions_evenly() {
        let j = job();
        let slice = j.rank_slice(64);
        assert_eq!(slice.categories, 4096);
        assert_eq!(slice.candidates_per_item, vec![205]);
    }

    #[test]
    fn enmc_beats_cpu_by_a_wide_margin() {
        let sys = SystemModel::table3();
        let j = job();
        let cpu = sys.run(&j, Scheme::CpuFull);
        let enmc = sys.run(&j, Scheme::Enmc);
        let speedup = enmc.speedup_over(&cpu);
        // Paper: ENMC delivers 56.5× average over CPU-full (55.5–600×
        // at batch 1). Accept a broad band around that.
        assert!(speedup > 20.0, "speedup {speedup}");
    }

    #[test]
    fn cpu_screening_alone_is_single_digit_speedup() {
        let sys = SystemModel::table3();
        let j = job();
        let full = sys.run(&j, Scheme::CpuFull);
        let screened = sys.run(&j, Scheme::CpuScreened);
        let s = screened.speedup_over(&full);
        assert!((3.0..16.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn enmc_beats_every_nmp_baseline() {
        let sys = SystemModel::table3();
        let j = job();
        let enmc = sys.run(&j, Scheme::Enmc);
        for kind in BaselineKind::figure13() {
            let b = sys.run(&j, Scheme::Baseline(kind));
            let adv = enmc.speedup_over(&b);
            assert!(adv > 1.5, "{:?}: only {adv}×", kind);
        }
    }

    #[test]
    fn enmc_energy_below_tensordimm() {
        let sys = SystemModel::table3();
        let j = job();
        let enmc = sys.run(&j, Scheme::Enmc).energy.expect("simulated");
        let td = sys.run(&j, Scheme::Baseline(BaselineKind::TensorDimm)).energy.expect("simulated");
        assert!(
            td.total_nj() > 2.0 * enmc.total_nj(),
            "TensorDIMM {} vs ENMC {}",
            td.total_nj(),
            enmc.total_nj()
        );
    }

    #[test]
    fn candidate_skew_slows_the_system() {
        let sys = SystemModel::table3();
        let j = job();
        let uniform = sys.run_enmc_skewed(&j, 0.0);
        let skewed = sys.run_enmc_skewed(&j, 1.0);
        assert!(skewed.ns > uniform.ns, "{} vs {}", skewed.ns, uniform.ns);
        // But the screening stream dominates, so even a 2x-hot rank costs
        // far less than 2x end-to-end.
        assert!(skewed.ns < 1.8 * uniform.ns, "{} vs {}", skewed.ns, uniform.ns);
    }

    #[test]
    fn run_traced_collects_events_for_simulated_schemes() {
        let sys = SystemModel::table3();
        let j = ClassificationJob {
            categories: 32_768,
            hidden: 128,
            reduced: 32,
            batch: 1,
            candidates: 256,
        };
        let mut tb = TraceBuffer::unbounded();
        let traced = sys.run_traced(&j, Scheme::Enmc, Some(&mut tb));
        assert!(!tb.is_empty(), "ENMC run must emit trace events");
        // Tracing must not change the answer.
        let plain = sys.run(&j, Scheme::Enmc);
        assert_eq!(plain.ns, traced.ns);
        // Analytic CPU schemes have nothing to trace.
        let mut cpu_tb = TraceBuffer::unbounded();
        sys.run_traced(&j, Scheme::CpuFull, Some(&mut cpu_tb));
        assert!(cpu_tb.is_empty());
    }

    #[test]
    fn figure13_scheme_set_order() {
        let sys = SystemModel::table3();
        let results = sys.run_figure13_schemes(&ClassificationJob {
            categories: 32_768,
            hidden: 128,
            reduced: 32,
            batch: 1,
            candidates: 256,
        });
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].scheme, Scheme::CpuScreened);
        assert_eq!(results[4].scheme, Scheme::Enmc);
    }
}
