//! Instruction-driven timing: run a *compiled* ENMC program through the
//! rank's DRAM timing model.
//!
//! [`crate::unit::RankUnit`] synthesizes its access stream from task
//! shapes; this module instead walks an actual [`Program`] — every `LDR`
//! becomes DRAM bursts at its encoded address, every `MUL_ADD` occupies
//! its MAC array once its operand fill has landed — closing the loop
//! between the compiler and the timing model. The decoder runs ahead of
//! the datapath (as the hardware's instruction FIFO allows), so fetches
//! overlap compute exactly as in the shape-based model; a consistency test
//! checks the two paths agree on the screening phase.

use crate::config::EnmcConfig;
use enmc_dram::{AddressMapping, DramConfig, DramStats, DramSystem, MemRequest, RequestId};
use enmc_isa::{BufferId, Instruction, Program};
use enmc_obs::trace::{
    TraceBuffer, TraceEvent, TraceSink, CAT_PIPELINE, TID_DECODE, TID_EXECUTOR, TID_SCREENER,
};
use std::collections::{HashMap, VecDeque};

/// Timing of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ProgramTiming {
    /// Total DRAM-bus cycles.
    pub dram_cycles: u64,
    /// Wall time in nanoseconds.
    pub ns: f64,
    /// Cycles the integer MAC array was busy.
    pub int_mac_busy: u64,
    /// Cycles the FP32 MAC array was busy.
    pub fp32_mac_busy: u64,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Instructions executed.
    pub instructions: usize,
}

/// One outstanding buffer fill.
#[derive(Debug)]
struct Ticket {
    bursts_left: usize,
    done_at: Option<u64>,
}

/// Execution state threading the DRAM clock through the walk.
struct Engine<'a> {
    dram: DramSystem,
    inflight: HashMap<RequestId, (BufferId, usize)>, // → (buffer, ticket idx)
    tickets: HashMap<BufferId, VecDeque<(usize, Ticket)>>,
    next_ticket: usize,
    trace: Option<&'a mut TraceBuffer>,
}

impl Engine<'_> {
    fn tick(&mut self) {
        self.dram.tick();
        let now = self.dram.cycle();
        for c in self.dram.drain_completions() {
            if let Some((buffer, idx)) = self.inflight.remove(&c.id) {
                if let Some(q) = self.tickets.get_mut(&buffer) {
                    if let Some((_, t)) = q.iter_mut().find(|(i, _)| *i == idx) {
                        t.bursts_left -= 1;
                        if t.bursts_left == 0 {
                            t.done_at = Some(now);
                        }
                    }
                }
            }
        }
    }

    /// Issues a fill and returns its ticket id.
    fn load(&mut self, buffer: BufferId, addr: u64, bytes: usize) -> usize {
        let bursts = bytes.div_ceil(64).max(1);
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.record(
                TraceEvent::instant("ldr", CAT_PIPELINE, self.dram.cycle(), 0, TID_DECODE)
                    .with_arg("buffer", buffer.code() as u64)
                    .with_arg("bytes", bytes as u64),
            );
        }
        let idx = self.next_ticket;
        self.next_ticket += 1;
        self.tickets
            .entry(buffer)
            .or_default()
            .push_back((idx, Ticket { bursts_left: bursts, done_at: None }));
        let mut issued = 0;
        while issued < bursts {
            match self.dram.enqueue(MemRequest::read(addr + (issued * 64) as u64)) {
                Some(id) => {
                    self.inflight.insert(id, (buffer, idx));
                    issued += 1;
                }
                None => self.tick(),
            }
        }
        idx
    }

    /// Pops the oldest fill of `buffer` and returns its completion cycle,
    /// ticking the clock forward until it lands.
    fn consume(&mut self, buffer: BufferId) -> u64 {
        loop {
            let front_done =
                self.tickets.get(&buffer).and_then(|q| q.front()).map(|(_, t)| t.done_at);
            match front_done {
                Some(Some(done)) => {
                    self.tickets.get_mut(&buffer).expect("present").pop_front();
                    return done;
                }
                Some(None) => self.tick(),
                None => return self.dram.cycle(), // nothing loaded: resident
            }
        }
    }

    fn outstanding(&self, buffer: BufferId) -> usize {
        self.tickets.get(&buffer).map(VecDeque::len).unwrap_or(0)
    }

    fn drain(&mut self, until: u64) {
        while !self.dram.is_idle() || self.dram.cycle() < until {
            self.tick();
            if self.dram.is_idle() && self.dram.cycle() >= until {
                break;
            }
        }
    }
}

/// Executes `program` against a fresh single-rank DRAM timing domain.
///
/// `hidden_dim` sizes FP32 feature loads (the compiler loads the whole
/// hidden vector once) and `reduced_dim` the quantized INT4 feature load;
/// all other fills are `cfg.buffer_bytes`.
pub fn run_program(
    cfg: &EnmcConfig,
    program: &Program,
    hidden_dim: usize,
    reduced_dim: usize,
) -> ProgramTiming {
    run_program_traced(cfg, program, hidden_dim, reduced_dim, None)
}

/// [`run_program`] with an optional trace collector: `MUL_ADD` occupancy
/// becomes spans on the [`TID_SCREENER`] / [`TID_EXECUTOR`] tracks, each
/// `LDR` an instant marker on [`TID_DECODE`], plus the DRAM controller's
/// per-command events.
pub fn run_program_traced(
    cfg: &EnmcConfig,
    program: &Program,
    hidden_dim: usize,
    reduced_dim: usize,
    trace: Option<&mut TraceBuffer>,
) -> ProgramTiming {
    let ratio = cfg.dram_cycles_per_logic_cycle(1200);
    let mut dram =
        DramSystem::with_mapping(DramConfig::enmc_single_rank(), AddressMapping::RoRaBaCoBg);
    if trace.is_some() {
        dram.enable_trace(1 << 20);
    }
    let mut eng = Engine {
        dram,
        inflight: HashMap::new(),
        tickets: HashMap::new(),
        next_ticket: 0,
        trace,
    };
    let mut timing = ProgramTiming::default();
    let mut int_mac_free = 0u64;
    let mut fp32_mac_free = 0u64;

    let bytes_for = |buffer: BufferId| -> usize {
        match buffer {
            BufferId::FeatureFp32 => hidden_dim * 4,
            BufferId::FeatureInt4 => reduced_dim.div_ceil(2).max(1),
            _ => cfg.buffer_bytes,
        }
    };

    // The hardware's instruction FIFO lets the decoder run ahead of the
    // datapath: before any blocking wait, LDRs up to `prefetch_depth`
    // fills ahead (and not past a BARRIER) are issued so fetch overlaps
    // compute.
    let insts: Vec<&Instruction> = program.iter().collect();
    let mut issued_upto = 0usize; // LDRs at indices < issued_upto are issued
    let prefetch = |eng: &mut Engine<'_>, from: usize, issued_upto: &mut usize| {
        let mut i = (*issued_upto).max(from);
        while i < insts.len() {
            match insts[i] {
                Instruction::Ldr { buffer, addr } => {
                    if eng.outstanding(*buffer) > cfg.prefetch_depth {
                        break;
                    }
                    eng.load(*buffer, *addr, bytes_for(*buffer));
                }
                Instruction::Barrier | Instruction::Return | Instruction::Clr => break,
                _ => {}
            }
            i += 1;
        }
        *issued_upto = i.max(*issued_upto);
    };

    for (pc, &inst) in insts.iter().enumerate() {
        timing.instructions += 1;
        match *inst {
            Instruction::Ldr { buffer, addr } => {
                if pc >= issued_upto {
                    // Not covered by an earlier prefetch sweep.
                    while eng.outstanding(buffer) > cfg.prefetch_depth {
                        eng.tick();
                    }
                    eng.load(buffer, addr, bytes_for(buffer));
                    issued_upto = pc + 1;
                }
            }
            Instruction::MulAddInt4 { b, .. } => {
                prefetch(&mut eng, pc + 1, &mut issued_upto);
                let ready = eng.consume(b);
                let elems = cfg.buffer_bytes * 2;
                let dur = ((elems as f64 / cfg.int4_macs as f64).ceil() as u64) * ratio;
                let start = ready.max(int_mac_free);
                int_mac_free = start + dur;
                timing.int_mac_busy += dur;
                if let Some(tb) = eng.trace.as_deref_mut() {
                    tb.record(TraceEvent::begin("mul_add_int4", CAT_PIPELINE, start, 0, TID_SCREENER));
                    tb.record(TraceEvent::end("mul_add_int4", CAT_PIPELINE, int_mac_free, 0, TID_SCREENER));
                }
            }
            Instruction::MulAddFp32 { b, .. } => {
                prefetch(&mut eng, pc + 1, &mut issued_upto);
                let ready = eng.consume(b);
                let elems = cfg.buffer_bytes / 4;
                let dur = ((elems as f64 / cfg.fp32_macs as f64).ceil() as u64) * ratio;
                let start = ready.max(fp32_mac_free);
                fp32_mac_free = start + dur;
                timing.fp32_mac_busy += dur;
                if let Some(tb) = eng.trace.as_deref_mut() {
                    tb.record(TraceEvent::begin("mul_add_fp32", CAT_PIPELINE, start, 0, TID_EXECUTOR));
                    tb.record(TraceEvent::end("mul_add_fp32", CAT_PIPELINE, fp32_mac_free, 0, TID_EXECUTOR));
                }
            }
            Instruction::Filter { .. } | Instruction::Softmax | Instruction::Sigmoid => {
                // Shadow units: one logic cycle of control latency.
                for _ in 0..ratio {
                    eng.tick();
                }
            }
            Instruction::Barrier | Instruction::Return | Instruction::Clr => {
                let until = int_mac_free.max(fp32_mac_free);
                eng.drain(until);
            }
            Instruction::Str { .. } => {
                while eng.dram.enqueue(MemRequest::write(0)).is_none() {
                    eng.tick();
                }
            }
            Instruction::Init { .. }
            | Instruction::Query { .. }
            | Instruction::Nop
            | Instruction::Move { .. }
            | Instruction::AddInt4 { .. }
            | Instruction::MulInt4 { .. }
            | Instruction::AddFp32 { .. }
            | Instruction::MulFp32 { .. } => {
                eng.tick(); // one C/A slot
            }
        }
    }
    eng.drain(int_mac_free.max(fp32_mac_free));
    timing.dram_cycles = eng.dram.cycle();
    timing.ns = eng.dram.elapsed_ns();
    timing.dram = eng.dram.stats();
    if let Some(tb) = eng.trace.as_deref_mut() {
        for e in eng.dram.take_trace() {
            tb.record(e);
        }
    }
    timing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{RankJob, RankUnit, UnitParams};
    use enmc_compiler::{lower_screening, MemoryLayout, TaskDescriptor};

    fn compile(l: usize, batch: usize) -> Program {
        let task = TaskDescriptor::paper_default(l, 512, batch);
        let layout = MemoryLayout::for_task(&task);
        lower_screening(&task, &layout, 256).expect("compiles")
    }

    #[test]
    fn program_timing_completes() {
        let p = compile(2048, 1);
        let t = run_program(&EnmcConfig::table3(), &p, 512, 128);
        assert!(t.dram_cycles > 0);
        assert!(t.int_mac_busy > 0);
        assert!(t.dram.reads > 0);
        assert_eq!(t.instructions, p.len());
    }

    #[test]
    fn instruction_path_agrees_with_shape_path_on_screening() {
        // The shape-based unit (candidates = 0 → pure screening) and the
        // instruction-driven path must agree on screening time within a
        // modest envelope — they model the same access stream.
        let l = 4096;
        let program = run_program(&EnmcConfig::table3(), &compile(l, 1), 512, 128);
        let unit = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
        let shape = unit.simulate(&RankJob {
            categories: l,
            hidden: 512,
            reduced: 128,
            batch: 1,
            candidates_per_item: vec![0],
        });
        let ratio = program.dram_cycles as f64 / shape.dram_cycles as f64;
        assert!(
            (0.75..1.35).contains(&ratio),
            "instruction path {} vs shape path {} (ratio {ratio})",
            program.dram_cycles,
            shape.dram_cycles
        );
        // And identical weight traffic (+1 burst: the feature load).
        assert_eq!(program.dram.reads, shape.dram.reads + 1);
    }

    #[test]
    fn traced_program_run_matches_untraced() {
        let cfg = EnmcConfig::table3();
        let p = compile(1024, 1);
        let plain = run_program(&cfg, &p, 512, 128);
        let mut tb = TraceBuffer::unbounded();
        let traced = run_program_traced(&cfg, &p, 512, 128, Some(&mut tb));
        assert_eq!(plain.dram_cycles, traced.dram_cycles);
        let names: std::collections::HashSet<&str> = tb.iter().map(|e| e.name).collect();
        for expected in ["mul_add_int4", "ldr", "ACT", "RD"] {
            assert!(names.contains(expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn bigger_programs_take_longer() {
        let cfg = EnmcConfig::table3();
        let small = run_program(&cfg, &compile(1024, 1), 512, 128);
        let large = run_program(&cfg, &compile(4096, 1), 512, 128);
        assert!(large.dram_cycles > 2 * small.dram_cycles);
    }

    #[test]
    fn batch_reuses_nothing_in_instruction_stream() {
        // The compiler emits one full weight pass per batch item (it does
        // not encode the feature-buffer packing optimization), so the
        // instruction path grows linearly — documenting the fidelity gap
        // between the static program and the hardware's runtime batching.
        let cfg = EnmcConfig::table3();
        let b1 = run_program(&cfg, &compile(1024, 1), 512, 128);
        let b2 = run_program(&cfg, &compile(1024, 2), 512, 128);
        assert!(b2.dram_cycles > (b1.dram_cycles as f64 * 1.7) as u64);
    }
}
