//! The CPU baseline (paper §6.2): Intel Xeon Platinum 8280.
//!
//! Extreme classification on the CPU is bandwidth-bound (Fig. 5b), so its
//! execution time is the roofline maximum of the bandwidth term and the
//! compute term. The cost accounting comes from `enmc_screen::cost` so the
//! algorithm-level (Fig. 11/12) and architecture-level (Fig. 13) numbers
//! share one model.

use enmc_screen::cost::{ClassificationCost, CpuCostModel};

/// The host-CPU performance model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuModel {
    cost_model: CpuCostModel,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::xeon_8280()
    }
}

impl CpuModel {
    /// The paper's Xeon 8280 configuration (28 cores, 6×DDR4-2666,
    /// 512 GB, 128 GB/s ideal bandwidth).
    pub fn xeon_8280() -> Self {
        CpuModel { cost_model: CpuCostModel::default() }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CpuCostModel {
        &self.cost_model
    }

    /// Nanoseconds to execute `cost`.
    pub fn ns(&self, cost: &ClassificationCost) -> f64 {
        self.cost_model.seconds(cost) * 1e9
    }

    /// Nanoseconds for a full classification of shape `(l, d)` at `batch`.
    pub fn full_classification_ns(&self, l: usize, d: usize, batch: usize) -> f64 {
        self.ns(&ClassificationCost::full(l, d, batch))
    }

    /// Nanoseconds for approximate screening + candidates-only
    /// classification on the CPU: quantized screening weights streamed
    /// once per batch, `m` candidate rows gathered per query.
    pub fn screened_classification_ns(
        &self,
        l: usize,
        d: usize,
        k: usize,
        m: usize,
        screen_bits: u32,
        batch: usize,
    ) -> f64 {
        let screen_weight_bytes = (l * k * screen_bits as usize).div_ceil(8) as u64;
        let cost = ClassificationCost {
            fp32_macs: ((k * d + m * d) * batch) as u64,
            int_macs: (l * k * batch) as u64,
            bytes_read: screen_weight_bytes
                + l as u64 * 4
                + (batch * (m * d * 4 + d * 4)) as u64,
            bytes_written: (l * batch * 4) as u64,
        };
        self.ns(&cost)
    }

    /// Nanoseconds for a compute-bound front-end of `ops` MACs per query.
    pub fn front_end_ns(&self, ops: u64, batch: usize) -> f64 {
        (ops as f64 * batch as f64 / self.cost_model.peak_fp32_macs) * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_classification_time_is_bandwidth_bound() {
        let cpu = CpuModel::xeon_8280();
        let ns = cpu.full_classification_ns(267_744, 512, 1);
        // 548 MB / ~97 GB/s ≈ 5.6 ms.
        let ms = ns / 1e6;
        assert!((4.0..9.0).contains(&ms), "{ms} ms");
    }

    #[test]
    fn screening_gives_high_single_digit_speedup() {
        // Paper §7.1/§7.2: approximate screening alone yields ~7.3× average
        // over full classification on CPU.
        let cpu = CpuModel::xeon_8280();
        let (l, d, k) = (267_744, 512, 128);
        // The paper's speedups (5.7-17.4x, 7.3x average) imply the exact
        // phase touches roughly 5-10% of the rows.
        let m = l / 20;
        let full = cpu.full_classification_ns(l, d, 1);
        let screened = cpu.screened_classification_ns(l, d, k, m, 4, 1);
        let speedup = full / screened;
        assert!((4.0..15.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn speedup_falls_with_more_candidates() {
        let cpu = CpuModel::xeon_8280();
        let (l, d, k) = (100_000, 512, 128);
        let fast = cpu.screened_classification_ns(l, d, k, 100, 4, 1);
        let slow = cpu.screened_classification_ns(l, d, k, 10_000, 4, 1);
        assert!(slow > fast);
    }

    #[test]
    fn front_end_scales_with_batch() {
        let cpu = CpuModel::xeon_8280();
        assert!(cpu.front_end_ns(1_000_000, 4) > cpu.front_end_ns(1_000_000, 1));
    }
}
