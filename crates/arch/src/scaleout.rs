//! Distributed scale-out of ENMC (paper §8: "our design can scale-out
//! from single-node to distributed nodes, where each node keeps an
//! approximate screener").
//!
//! For catalogues beyond one node's memory (S100M at 190 GB already
//! strains a 512 GB host), the classifier is sharded row-wise over `N`
//! nodes. Each node holds its shard's screening weights *and* classifier
//! rows, so a query is:
//!
//! 1. broadcast `h` to all nodes (small: `d` floats);
//! 2. every node screens its shard and computes its local candidates on
//!    its own ENMC DIMMs (perfectly parallel);
//! 3. nodes return their top local logits (a few KB); the root merges.
//!
//! The network model is a simple latency + bandwidth pipe; the point of
//! the analysis is that the returned data is *tiny* (candidates only), so
//! scale-out efficiency stays high — screening made the communication
//! cheap, not just the computation.

use crate::system::{ClassificationJob, Scheme, SchemeResult, SystemModel};

/// A cluster interconnect.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Network {
    /// One-way latency per message, nanoseconds.
    pub latency_ns: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl Network {
    /// A 100 Gb/s RoCE-class fabric.
    pub fn roce_100g() -> Self {
        Network { latency_ns: 2_000.0, bandwidth: 12.5e9 }
    }

    /// Time to move `bytes` one way.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bandwidth * 1e9
    }

    /// [`Network::transfer_ns`] converted to whole DRAM-clock cycles
    /// (rounded up), for discrete-event simulators that account time in
    /// cycles. `ns_per_cycle` must be positive.
    pub fn transfer_cycles(&self, bytes: u64, ns_per_cycle: f64) -> u64 {
        debug_assert!(ns_per_cycle > 0.0, "cycle time must be positive");
        (self.transfer_ns(bytes) / ns_per_cycle).ceil() as u64
    }
}

/// Result of a scale-out projection.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScaleOutResult {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-query latency, nanoseconds.
    pub ns: f64,
    /// Fraction of time spent on the network.
    pub network_share: f64,
    /// Parallel efficiency vs the 1-node run (`t₁ / (N · t_N)`).
    pub efficiency: f64,
}

/// Projects `job` sharded over `nodes` machines, each a full Table 3
/// system running `scheme`.
///
/// # Panics
///
/// Panics if `nodes == 0`.
pub fn scale_out(
    system: &SystemModel,
    network: &Network,
    job: &ClassificationJob,
    scheme: Scheme,
    nodes: usize,
) -> ScaleOutResult {
    assert!(nodes > 0, "need at least one node");
    let shard = ClassificationJob {
        categories: job.categories.div_ceil(nodes),
        hidden: job.hidden,
        reduced: job.reduced,
        batch: job.batch,
        candidates: job.candidates.div_ceil(nodes),
        // Shards keep their per-node structure otherwise.
    };
    let local: SchemeResult = system.run(&shard, scheme);

    // Broadcast h (d floats per batch item) + gather each node's local
    // top logits (candidates × (index + value) = 8 B each).
    let bcast = network.transfer_ns((job.batch * job.hidden * 4) as u64);
    let gather =
        network.transfer_ns((job.batch * shard.candidates * 8) as u64) * (nodes as f64).log2().max(1.0);
    let network_ns = if nodes == 1 { 0.0 } else { bcast + gather };
    let total = local.ns + network_ns;

    // 1-node reference for efficiency.
    let t1 = system.run(job, scheme).ns;
    ScaleOutResult {
        nodes,
        ns: total,
        network_share: network_ns / total,
        efficiency: t1 / (nodes as f64 * total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> ClassificationJob {
        ClassificationJob {
            categories: 1_048_576,
            hidden: 512,
            reduced: 128,
            batch: 1,
            candidates: 4096,
        }
    }

    #[test]
    fn network_transfer_model() {
        let n = Network::roce_100g();
        assert!(n.transfer_ns(0) == 2_000.0);
        // 12.5 GB at 12.5 GB/s = 1 s.
        assert!((n.transfer_ns(12_500_000_000) - 1e9 - 2000.0).abs() < 1.0);
    }

    #[test]
    fn transfer_cycles_round_up() {
        let n = Network::roce_100g();
        // 2000 ns latency at 0.75 ns/cycle = 2666.67 cycles -> 2667.
        assert_eq!(n.transfer_cycles(0, 0.75), 2667);
        assert!(n.transfer_cycles(1 << 20, 0.75) > n.transfer_cycles(0, 0.75));
    }

    #[test]
    fn more_nodes_cut_latency() {
        let sys = SystemModel::table3();
        let net = Network::roce_100g();
        let j = job();
        let one = scale_out(&sys, &net, &j, Scheme::Enmc, 1);
        let four = scale_out(&sys, &net, &j, Scheme::Enmc, 4);
        assert!(four.ns < one.ns, "4 nodes {} vs 1 node {}", four.ns, one.ns);
    }

    #[test]
    fn efficiency_degrades_gracefully() {
        let sys = SystemModel::table3();
        let net = Network::roce_100g();
        let j = job();
        let r4 = scale_out(&sys, &net, &j, Scheme::Enmc, 4);
        let r16 = scale_out(&sys, &net, &j, Scheme::Enmc, 16);
        assert!(r4.efficiency > r16.efficiency);
        assert!(r4.efficiency > 0.5, "4-node efficiency {}", r4.efficiency);
    }

    #[test]
    fn network_share_grows_with_nodes() {
        let sys = SystemModel::table3();
        let net = Network::roce_100g();
        let j = job();
        let r2 = scale_out(&sys, &net, &j, Scheme::Enmc, 2);
        let r32 = scale_out(&sys, &net, &j, Scheme::Enmc, 32);
        assert!(r32.network_share > r2.network_share);
    }

    #[test]
    fn single_node_has_no_network_cost() {
        let sys = SystemModel::table3();
        let net = Network::roce_100g();
        let r = scale_out(&sys, &net, &job(), Scheme::Enmc, 1);
        assert_eq!(r.network_share, 0.0);
        assert!((r.efficiency - 1.0).abs() < 1e-9);
    }
}
