// Numeric kernels index multiple arrays in lockstep; iterator
// rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

//! The ENMC near-memory architecture simulator and its baselines
//! (paper §5, §6.2, §7.2).
//!
//! The paper evaluates ENMC with a cycle-accurate simulator interfaced with
//! Ramulator; this crate plays that role on top of the [`enmc_dram`]
//! substrate:
//!
//! * [`config`] — the Table 3 ENMC configuration (400 MHz logic, 128 INT4
//!   MACs, 16 FP32 MACs, 256 B buffers) and the Table 4 iso-budget NMP
//!   baselines (NDA, Chameleon, TensorDIMM, TensorDIMM-Large);
//! * [`mod@unit`] — the cycle-level model of one rank's ENMC logic: Screener
//!   and Executor pipelines running in parallel against the rank's DRAM
//!   (dual-module architecture, §5.1–5.2); `simulate_traced` additionally
//!   emits per-stage `enmc_obs` spans and DRAM command events for the
//!   Chrome/Perfetto trace exporter;
//! * [`baseline`] — the homogeneous-FP32 NMP model the paper compares
//!   against, including the z̃ spill-to-DRAM behaviour that limited
//!   buffers force (§7.2);
//! * [`cpu`] — the Xeon 8280 roofline model (§6.2);
//! * [`system`] — whole-system composition: a workload is partitioned over
//!   8 channels × 8 ranks; system time is the slowest rank plus result
//!   return;
//! * [`energy`] — compute/control energy from the Table 5 power numbers,
//!   combined with DRAM access/static energy from [`enmc_dram::energy`]
//!   (Fig. 14's three-way split);
//! * [`physical`] — the analytic area/power model reproducing Tables 4
//!   and 5;
//! * [`endtoend`] — the Fig. 15 end-to-end scalability composition
//!   (front-end + classification).

pub mod baseline;
pub mod functional;
pub mod config;
pub mod controller;
pub mod cpu;
pub mod endtoend;
pub mod energy;
pub mod physical;
pub mod program_timing;
pub mod scaleout;
pub mod system;
pub mod throughput;
pub mod unit;

pub use baseline::{BaselineKind, NmpBaseline};
pub use config::{EnmcConfig, NmpConfig};
pub use cpu::CpuModel;
pub use functional::{FunctionalDimm, HostRuntime};
pub use energy::{LogicEnergyModel, SystemEnergy};
pub use physical::{AreaPower, PhysicalModel};
pub use system::{ClassificationJob, SchemeResult, SystemModel};
pub use unit::{RankUnit, UnitReport};
