//! The NMP baselines (paper §6.2, Table 4): NDA, Chameleon, TensorDIMM and
//! TensorDIMM-Large, all equipped with the approximate screening algorithm
//! but limited to homogeneous FP32 compute units.

use crate::config::NmpConfig;
use crate::unit::{RankUnit, UnitParams};

/// Which baseline architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BaselineKind {
    /// NDA: CGRA-based near-DRAM acceleration (HPCA'15).
    Nda,
    /// Chameleon: systolic-array near-DRAM acceleration (MICRO'16).
    Chameleon,
    /// TensorDIMM: 16-lane vector unit per rank (MICRO'19).
    TensorDimm,
    /// TensorDIMM with 4× lanes and buffers (Fig. 14/15).
    TensorDimmLarge,
}

impl BaselineKind {
    /// The three Table 4 / Fig. 13 baselines.
    pub fn figure13() -> [BaselineKind; 3] {
        [BaselineKind::Nda, BaselineKind::Chameleon, BaselineKind::TensorDimm]
    }

    /// The hardware configuration.
    pub fn config(self) -> NmpConfig {
        match self {
            BaselineKind::Nda => NmpConfig::nda(),
            BaselineKind::Chameleon => NmpConfig::chameleon(),
            BaselineKind::TensorDimm => NmpConfig::tensordimm(),
            BaselineKind::TensorDimmLarge => NmpConfig::tensordimm_large(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.config().name
    }
}

/// A baseline NMP rank-unit model.
#[derive(Debug, Clone)]
pub struct NmpBaseline {
    kind: BaselineKind,
    unit: RankUnit,
}

impl NmpBaseline {
    /// Builds the rank engine for `kind`.
    pub fn new(kind: BaselineKind) -> Self {
        NmpBaseline { kind, unit: RankUnit::new(Self::params(kind)) }
    }

    /// The baseline's identity.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// The rank engine.
    pub fn unit(&self) -> &RankUnit {
        &self.unit
    }

    /// Derives [`UnitParams`] from the baseline's [`NmpConfig`]:
    /// homogeneous FP32 lanes (screening weights stored at 32 bits), no
    /// comparator array (spill-filter path), and the shared 1200 MHz DRAM
    /// bus clock.
    pub fn params(kind: BaselineKind) -> UnitParams {
        let cfg = kind.config();
        let lanes = cfg.fp32_macs as f64 * cfg.mv_efficiency;
        UnitParams {
            screen_bits: 32,
            screen_macs_per_cycle: lanes,
            fp32_macs_per_cycle: lanes,
            buffer_bytes: cfg.buffer_bytes,
            prefetch_depth: 2,
            clock_ratio: (1200 / cfg.freq_mhz).max(1),
            inline_filter: false,
            serial_phases: false,
            sfu_per_cycle: 1.0, // exp via Taylor on the general lanes
            dram: enmc_dram::DramConfig::enmc_single_rank(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::RankJob;

    fn job() -> RankJob {
        RankJob {
            categories: 2048,
            hidden: 512,
            reduced: 128,
            batch: 1,
            candidates_per_item: vec![16],
        }
    }

    #[test]
    fn params_reflect_configs() {
        let td = NmpBaseline::params(BaselineKind::TensorDimm);
        assert_eq!(td.screen_bits, 32);
        assert!(!td.inline_filter);
        let ch = NmpBaseline::params(BaselineKind::Chameleon);
        assert!(td.screen_macs_per_cycle > ch.screen_macs_per_cycle);
    }

    #[test]
    fn tensordimm_beats_chameleon() {
        // The paper's ordering (Fig. 13): TensorDIMM is the strongest
        // baseline, Chameleon the weakest.
        let j = job();
        let td = NmpBaseline::new(BaselineKind::TensorDimm).unit().simulate(&j);
        let ch = NmpBaseline::new(BaselineKind::Chameleon).unit().simulate(&j);
        let nda = NmpBaseline::new(BaselineKind::Nda).unit().simulate(&j);
        assert!(td.dram_cycles < nda.dram_cycles, "td {} nda {}", td.dram_cycles, nda.dram_cycles);
        assert!(nda.dram_cycles < ch.dram_cycles, "nda {} ch {}", nda.dram_cycles, ch.dram_cycles);
    }

    #[test]
    fn large_variant_is_faster() {
        let j = job();
        let td = NmpBaseline::new(BaselineKind::TensorDimm).unit().simulate(&j);
        let tdl = NmpBaseline::new(BaselineKind::TensorDimmLarge).unit().simulate(&j);
        assert!(tdl.dram_cycles < td.dram_cycles);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BaselineKind::Nda.name(), "NDA");
        assert_eq!(BaselineKind::TensorDimmLarge.name(), "TensorDIMM-Large");
    }
}
