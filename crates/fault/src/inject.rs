//! Injection of bit errors into weight images at DRAM read granularity.
//!
//! The unit of corruption is the 64-bit DRAM word (a 72-bit codeword when
//! SEC-DED is enabled): a byte image is walked word by word, each word is
//! passed through the [`FaultModel`] channel at its own word address, and —
//! under ECC — re-encoded/decoded with the corrected and
//! detected-uncorrectable outcomes counted.
//!
//! Two weight surfaces exist in ENMC:
//!
//! * the **screener stream** — the packed INT image of `W̃` that every
//!   query reads in full ([`corrupt_screener`]);
//! * the **exact path** — the FP32 rows of `W` that only *candidate*
//!   categories ever read ([`corrupt_matrix`]); corruption landing in rows
//!   the screener prunes is invisible, which is precisely the masking
//!   effect the resilience sweep quantifies.
//!
//! Images whose byte length is not a multiple of 8 are padded with zeros to
//! the ECC word boundary, exactly as a DIMM would store them; flips landing
//! in the pad bits are counted as raw channel flips but cannot reach any
//! consumer.

use crate::ecc::{encode, Decoded, EccCounters};
use crate::model::FaultModel;
use enmc_screen::screener::Screener;
use enmc_tensor::{pack_codes, unpack_codes, Matrix, TensorError};

/// Word address base of the screener's packed INT image.
pub const SCREENER_BASE_ADDR: u64 = 0x0010_0000;

/// Word address base of the exact-path FP32 weight image.
pub const WEIGHTS_BASE_ADDR: u64 = 0x0800_0000;

/// Flip accounting for one corrupted surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct InjectionStats {
    /// 64-bit words processed.
    pub words: u64,
    /// Bits the channel flipped (data + check bits, before correction).
    pub raw_flips: u64,
    /// Data bits still wrong after ECC (equals the raw data flips when
    /// ECC is off).
    pub residual_flips: u64,
    /// SEC-DED decode outcomes (all zero when ECC is off).
    pub ecc: EccCounters,
}

impl InjectionStats {
    /// Folds `other` into `self` (commutative element-wise sum).
    pub fn merge(&mut self, other: &InjectionStats) {
        self.words += other.words;
        self.raw_flips += other.raw_flips;
        self.residual_flips += other.residual_flips;
        self.ecc.merge(&other.ecc);
    }
}

/// Corrupts a byte image in place. Word `i` of the image is read at word
/// address `base_addr + i`; with `ecc` the stored (72,64) codeword is
/// corrupted and decoded, otherwise the raw 64 data bits pass through the
/// channel unprotected.
pub fn corrupt_image(
    bytes: &mut [u8],
    base_addr: u64,
    model: &FaultModel,
    ecc: bool,
    stats: &mut InjectionStats,
) {
    for (i, chunk) in bytes.chunks_mut(8).enumerate() {
        let addr = base_addr + i as u64;
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let clean = u64::from_le_bytes(word);
        stats.words += 1;
        let out = if ecc {
            let parity = encode(clean);
            let (cd, cp) = model.corrupt_codeword(addr, clean, parity);
            stats.raw_flips +=
                u64::from((cd ^ clean).count_ones() + (cp ^ parity).count_ones());
            match stats.ecc.decode_counted(cd, cp) {
                Decoded::Clean(d) | Decoded::Corrected(d) | Decoded::Uncorrectable(d) => d,
            }
        } else {
            let cd = model.corrupt_word(addr, clean);
            stats.raw_flips += u64::from((cd ^ clean).count_ones());
            cd
        };
        stats.residual_flips += u64::from((out ^ clean).count_ones());
        chunk.copy_from_slice(&out.to_le_bytes()[..chunk.len()]);
    }
}

/// Marks which logical rows of a corrupted image differ from the clean one.
fn rows_touched<T: PartialEq>(clean: &[T], dirty: &[T], rows: usize, cols: usize) -> Vec<bool> {
    (0..rows)
        .map(|r| clean[r * cols..(r + 1) * cols] != dirty[r * cols..(r + 1) * cols])
        .collect()
}

/// Clones `screener` with its frozen quantized weight image passed through
/// the DRAM error channel: pack → corrupt at word granularity → unpack →
/// substitute. Returns the faulted screener, the flip accounting, and a
/// per-category flag of which screener rows now hold corrupted codes.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the screener is not frozen
/// with a per-tensor integer image (FP32 and per-row-scale screeners have
/// no packed stream to corrupt).
pub fn corrupt_screener(
    screener: &Screener,
    model: &FaultModel,
    ecc: bool,
) -> Result<(Screener, InjectionStats, Vec<bool>), TensorError> {
    let q = screener.quant_weights().ok_or(TensorError::InvalidArgument(
        "fault injection requires a frozen screener with a per-tensor quantized image",
    ))?;
    let mut stats = InjectionStats::default();
    let mut bytes =
        pack_codes(q.codes(), q.precision()).map_err(TensorError::InvalidArgument)?;
    corrupt_image(&mut bytes, SCREENER_BASE_ADDR, model, ecc, &mut stats);
    let codes = unpack_codes(&bytes, q.codes().len(), q.precision())
        .map_err(TensorError::InvalidArgument)?;
    let rows = rows_touched(q.codes(), &codes, q.rows(), q.cols());
    let corrupted =
        enmc_tensor::QuantMatrix::from_parts(q.rows(), q.cols(), codes, q.scale(), q.precision())?;
    let mut faulted = screener.clone();
    faulted.set_quant_weights(corrupted)?;
    Ok((faulted, stats, rows))
}

/// Passes an FP32 matrix (the exact-path weights) through the DRAM error
/// channel: two IEEE-754 words per 64-bit ECC word, little-endian. Returns
/// the corrupted matrix, flip accounting, and a per-row corruption flag.
/// Bit flips may produce NaN/Inf values — realistic, and the selection
/// kernels tolerate them.
pub fn corrupt_matrix(
    m: &Matrix,
    base_addr: u64,
    model: &FaultModel,
    ecc: bool,
) -> (Matrix, InjectionStats, Vec<bool>) {
    let mut stats = InjectionStats::default();
    let mut bytes = Vec::with_capacity(m.as_slice().len() * 4);
    for &v in m.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    corrupt_image(&mut bytes, base_addr, model, ecc, &mut stats);
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let clean_bits: Vec<u32> = m.as_slice().iter().map(|v| v.to_bits()).collect();
    let dirty_bits: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    let rows = rows_touched(&clean_bits, &dirty_bits, m.rows(), m.cols());
    let corrupted = Matrix::from_vec(m.rows(), m.cols(), data).expect("shape preserved");
    (corrupted, stats, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_screen::screener::{Screener, ScreenerConfig};
    use enmc_tensor::{Precision, Vector};

    fn trained_screener(precision: Precision) -> Screener {
        let cfg = ScreenerConfig { precision, ..Default::default() };
        let mut s = Screener::new(16, 32, &cfg).unwrap();
        let w = Matrix::from_vec(
            16,
            32,
            (0..512).map(|i| (i as f32 * 0.17).sin() * 0.6).collect(),
        )
        .unwrap();
        let b = Vector::zeros(16);
        let samples: Vec<Vector> = (0..8)
            .map(|q| (0..32).map(|i| ((q * 32 + i) as f32 * 0.23).cos()).collect())
            .collect();
        enmc_screen::fit_least_squares(&mut s, &w, &b, &samples, 0.1);
        s.freeze().unwrap();
        s
    }

    #[test]
    fn nominal_injection_is_a_noop_everywhere() {
        let model = FaultModel::nominal(7);
        for ecc in [false, true] {
            let mut stats = InjectionStats::default();
            let mut bytes = vec![0xA5u8; 37];
            corrupt_image(&mut bytes, 0, &model, ecc, &mut stats);
            assert_eq!(bytes, vec![0xA5u8; 37]);
            assert_eq!(stats.raw_flips, 0);
            assert_eq!(stats.residual_flips, 0);
            assert_eq!(stats.ecc.detected_uncorrected, 0);

            let s = trained_screener(Precision::Int4);
            let (faulted, st, rows) = corrupt_screener(&s, &model, ecc).unwrap();
            assert_eq!(st.residual_flips, 0);
            assert!(rows.iter().all(|&r| !r));
            let h: Vector = (0..32).map(|i| (i as f32 * 0.21).cos()).collect();
            assert_eq!(s.screen_ref(&h), faulted.screen_ref(&h), "bit-identical logits");
        }
    }

    #[test]
    fn ecc_corrects_what_a_low_ber_channel_flips() {
        // At BER 1e-4 double flips within one 72-bit word are ~1e-6:
        // essentially every corrupted word carries one flip, which SEC-DED
        // removes entirely.
        let model = FaultModel::nominal(21).with_ber(1e-4);
        let mut bytes = vec![0x3Cu8; 64 * 1024];
        let clean = bytes.clone();
        let mut stats = InjectionStats::default();
        corrupt_image(&mut bytes, 0, &model, true, &mut stats);
        assert!(stats.raw_flips > 0, "channel must flip something over 64 KiB");
        assert_eq!(stats.residual_flips, 0, "SEC-DED must correct isolated flips");
        assert!(stats.ecc.corrected > 0);
        assert_eq!(bytes, clean);

        // The same channel without ECC leaves residual corruption.
        let mut bytes = vec![0x3Cu8; 64 * 1024];
        let mut raw = InjectionStats::default();
        corrupt_image(&mut bytes, 0, &model, false, &mut raw);
        assert!(raw.residual_flips > 0);
        assert_ne!(bytes, clean);
    }

    #[test]
    fn high_ber_overwhelms_secded() {
        let model = FaultModel::nominal(2).with_ber(0.02);
        let mut bytes = vec![0u8; 64 * 1024];
        let mut stats = InjectionStats::default();
        corrupt_image(&mut bytes, 0, &model, true, &mut stats);
        assert!(stats.ecc.detected_uncorrected > 0, "2% BER must produce double-bit words");
        assert!(stats.residual_flips > 0);
    }

    #[test]
    fn corrupt_screener_flags_exactly_the_rows_whose_codes_moved() {
        let s = trained_screener(Precision::Int4);
        let model = FaultModel::nominal(5).with_ber(0.02);
        let (faulted, stats, rows) = corrupt_screener(&s, &model, false).unwrap();
        assert!(stats.residual_flips > 0, "2% BER over 16x8 INT4 codes must flip a code");
        let clean_q = s.quant_weights().unwrap();
        let dirty_q = faulted.quant_weights().unwrap();
        for (r, &flag) in rows.iter().enumerate() {
            assert_eq!(clean_q.row(r) != dirty_q.row(r), flag, "row {r}");
        }
        assert!(rows.iter().any(|&r| r));
    }

    #[test]
    fn corrupt_screener_requires_a_frozen_integer_image() {
        let model = FaultModel::nominal(0);
        let cfg = ScreenerConfig { precision: Precision::Int4, ..Default::default() };
        let unfrozen = Screener::new(4, 8, &cfg).unwrap();
        assert!(corrupt_screener(&unfrozen, &model, false).is_err());
        let fp32 = trained_screener(Precision::Fp32);
        assert!(corrupt_screener(&fp32, &model, false).is_err());
    }

    #[test]
    fn corrupt_matrix_rows_match_bit_differences() {
        let m = Matrix::from_vec(8, 16, (0..128).map(|i| (i as f32 * 0.3).sin()).collect())
            .unwrap();
        let model = FaultModel::nominal(3).with_ber(1e-3);
        let (dirty, stats, rows) = corrupt_matrix(&m, WEIGHTS_BASE_ADDR, &model, false);
        assert!(stats.raw_flips > 0);
        for r in 0..8 {
            let differs = m.row(r).iter().zip(dirty.row(r)).any(|(a, b)| a.to_bits() != b.to_bits());
            assert_eq!(differs, rows[r], "row {r}");
        }
    }

    #[test]
    fn injection_is_independent_of_chunking() {
        // The same logical image corrupted as one call or split across
        // word-aligned sub-slices (with matching base addresses) must agree:
        // corruption depends only on (seed, word address, bit).
        let model = FaultModel::nominal(17).with_ber(5e-3);
        let image: Vec<u8> = (0..256).map(|i| (i * 37 % 251) as u8).collect();
        let mut whole = image.clone();
        let mut s1 = InjectionStats::default();
        corrupt_image(&mut whole, 100, &model, false, &mut s1);
        let mut split = image.clone();
        let (a, b) = split.split_at_mut(128);
        let mut s2 = InjectionStats::default();
        corrupt_image(a, 100, &model, false, &mut s2);
        corrupt_image(b, 100 + 16, &model, false, &mut s2);
        assert_eq!(whole, split);
        assert_eq!(s1, s2);
    }
}
