//! The resilience pipeline: quality-vs-refresh-energy sweeps.
//!
//! For each refresh-interval multiplier the sweep corrupts both weight
//! surfaces once, re-screens a fixed query set against the faulted
//! pipeline, and measures quality with [`QualityAccumulator`] — sharded
//! over a *fixed* shard count and merged in shard order, so the result is
//! bit-identical at any worker count (the same discipline as the rest of
//! the workspace).
//!
//! Per candidate tier the sweep also attributes every fault-induced top-1
//! flip to one of two causes:
//!
//! * **candidate drop** — the clean pipeline's winner no longer survives
//!   screening (the corrupted screener pruned it);
//! * **logit spike** — the winner was still a candidate but some other
//!   logit (a corrupted exact row or an inflated approximate score)
//!   overtook it.
//!
//! And it counts how many corrupted exact-path rows each tier actually
//! *read*: corruption in a row that screening prunes for every query is
//! masked — the DRAM error physically exists but can never reach a logit.
//! This is the screening-masks-errors effect the sweep quantifies.
//!
//! [`run_resilience_sweep`] additionally joins each point with the
//! relaxed-refresh DRAM energy of the full rank-parallel system, giving
//! the quality-vs-energy Pareto data of the EDEN-style trade-off.

use crate::ecc::{ECC_MW, ECC_NJ_PER_BURST, ECC_NS_PER_BURST};
use crate::inject::{corrupt_matrix, corrupt_screener, InjectionStats, WEIGHTS_BASE_ADDR};
use crate::model::FaultModel;
use enmc_arch::energy::LogicEnergyModel;
use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_dram::energy::EnergyModel;
use enmc_model::quality::{QualityAccumulator, QualityReport};
use enmc_model::synth::SyntheticClassifier;
use enmc_obs::trace::{TraceBuffer, TraceEvent, TraceSink};
use enmc_obs::MetricsRegistry;
use enmc_screen::{ApproxClassifier, SelectionPolicy};
use enmc_surrogate::{CostBackend, CostModel, SurrogateViolation};
use enmc_tensor::{top_k_indices, TensorError};
use std::fmt;

/// Fixed shard count for quality evaluation — like the pipeline's
/// `QUALITY_SHARDS`, decoupled from the worker count so results are
/// worker-count invariant.
pub const FAULT_SHARDS: usize = 8;

/// Precision@k measured by the quality accumulators (matches the
/// pipeline's quality evaluation).
const PRECISION_AT: usize = 10;

/// One resilience sweep: which channel to model and where to sample it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultSweepSpec {
    /// Base error model; `refresh_multiplier` is overridden per point.
    pub model: FaultModel,
    /// Refresh-interval multipliers to sweep (each ≥ 1).
    pub multipliers: Vec<f64>,
    /// Protect both weight surfaces with SEC-DED (72,64).
    pub ecc: bool,
    /// Queries evaluated per point.
    pub queries: usize,
    /// Seed for the query sample.
    pub query_seed: u64,
    /// Candidate counts to break the analysis down by (first entry is the
    /// headline tier).
    pub tiers: Vec<usize>,
}

/// Per-tier quality and attribution at one sweep point.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TierOutcome {
    /// Candidate count (top-M) of this tier.
    pub candidates: usize,
    /// Quality of the faulted pipeline vs the clean *full* classifier.
    pub quality: QualityReport,
    /// Queries whose top-1 differs between the clean and the faulted
    /// approximate pipeline.
    pub fault_top1_flips: u64,
    /// ... because the clean winner no longer survived screening.
    pub flips_candidate_drop: u64,
    /// ... because another (corrupted or inflated) logit overtook it.
    pub flips_logit_spike: u64,
    /// Corrupted exact-path rows read by at least one query at this tier.
    pub corrupted_rows_read: usize,
    /// Corrupted exact-path rows no query ever read — errors masked by
    /// screening.
    pub corrupted_rows_masked: usize,
}

/// One point of the sweep: injection accounting, per-tier quality, and
/// (when run through [`run_resilience_sweep`]) the system energy at this
/// refresh setting.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Refresh-interval multiplier of this point.
    pub refresh_multiplier: f64,
    /// Uniform BER of the channel (constant across points).
    pub ber: f64,
    /// Whether SEC-DED protected the surfaces.
    pub ecc: bool,
    /// Flip accounting on the screener's packed INT stream.
    pub screener: InjectionStats,
    /// Flip accounting on the exact-path FP32 image.
    pub weights: InjectionStats,
    /// Screener rows holding at least one corrupted code.
    pub screener_rows_corrupted: usize,
    /// Exact-path rows holding at least one corrupted bit.
    pub weights_rows_corrupted: usize,
    /// Per-tier breakdown (same order as the spec's `tiers`).
    pub tiers: Vec<TierOutcome>,
    /// Refresh energy of the whole system at this multiplier, nJ
    /// (0 until the energy join runs).
    pub refresh_energy_nj: f64,
    /// Total system energy (DRAM + logic) at this multiplier, nJ.
    pub total_energy_nj: f64,
    /// Energy paid for ECC decodes, nJ.
    pub ecc_energy_nj: f64,
    /// Aggregate decode latency added to the run's read bursts, ns.
    pub ecc_latency_ns: f64,
}

impl SweepPoint {
    /// The headline tier (first in the spec).
    pub fn primary(&self) -> &TierOutcome {
        &self.tiers[0]
    }

    /// Headline fault-induced quality degradation: the fraction of
    /// queries whose top-1 flipped versus the *clean approximate*
    /// pipeline, in percent. Exactly 0 under a nominal channel — the
    /// screener's own approximation loss (quality vs the full
    /// classifier) is deliberately excluded, so this field isolates what
    /// the DRAM faults cost.
    pub fn quality_degradation_pct(&self) -> f64 {
        let t = self.primary();
        100.0 * t.fault_top1_flips as f64 / t.quality.queries.max(1) as f64
    }

    /// Total ECC outcomes across both surfaces.
    pub fn ecc_corrected(&self) -> u64 {
        self.screener.ecc.corrected + self.weights.ecc.corrected
    }

    /// Total detected-uncorrectable words across both surfaces.
    pub fn ecc_uncorrected(&self) -> u64 {
        self.screener.ecc.detected_uncorrected + self.weights.ecc.detected_uncorrected
    }
}

/// Per-shard partial result of one (point, tier) evaluation.
struct ShardOutcome {
    acc: QualityAccumulator,
    flips: u64,
    drops: u64,
    spikes: u64,
    read_rows: Vec<bool>,
}

/// Runs the quality half of the sweep (no energy join): one [`SweepPoint`]
/// per multiplier, energy fields left at zero.
///
/// # Errors
///
/// Propagates injection errors (unfrozen or per-row-scale screeners).
///
/// # Panics
///
/// Panics if the spec has no multipliers, no tiers, or zero queries.
pub fn run_sweep(
    synth: &SyntheticClassifier,
    classifier: &ApproxClassifier,
    spec: &FaultSweepSpec,
    workers: usize,
) -> Result<Vec<SweepPoint>, TensorError> {
    assert!(!spec.multipliers.is_empty(), "sweep needs at least one multiplier");
    assert!(!spec.tiers.is_empty(), "sweep needs at least one candidate tier");
    assert!(spec.queries > 0, "sweep needs at least one query");
    let queries = synth.sample_queries_seeded(spec.queries, spec.query_seed);
    let mut points = Vec::with_capacity(spec.multipliers.len());
    for &m in &spec.multipliers {
        let model = spec.model.with_refresh_multiplier(m);
        let (faulted_screener, screener_stats, screener_rows) =
            corrupt_screener(classifier.screener(), &model, spec.ecc)?;
        let (faulted_weights, weights_stats, weights_rows) =
            corrupt_matrix(classifier.weights(), WEIGHTS_BASE_ADDR, &model, spec.ecc);

        let mut tiers = Vec::with_capacity(spec.tiers.len());
        for &tier in &spec.tiers {
            let policy = SelectionPolicy::TopM(tier);
            let ranges = enmc_par::shard_ranges(queries.len(), FAULT_SHARDS);
            let shards: Vec<ShardOutcome> =
                enmc_par::par_map(workers, ranges, |_, range| {
                    let mut out = ShardOutcome {
                        acc: QualityAccumulator::new(PRECISION_AT),
                        flips: 0,
                        drops: 0,
                        spikes: 0,
                        read_rows: vec![false; classifier.categories()],
                    };
                    for q in &queries[range] {
                        let full = synth.full_logits(&q.hidden);
                        let clean = classifier.classify_ref_with(&q.hidden, policy);
                        // The faulted pipeline, step for step the same as
                        // `classify_ref_with` so a nominal channel is
                        // bit-identical to the clean path.
                        let approx = faulted_screener.screen_ref(&q.hidden);
                        let candidates = policy.select(approx.as_slice());
                        let exact =
                            faulted_weights.matvec_rows(&candidates, &q.hidden, classifier.bias());
                        let mut logits = approx;
                        for &(idx, val) in &exact {
                            logits[idx] = val;
                        }
                        for &idx in &candidates {
                            out.read_rows[idx] = true;
                        }
                        out.acc.add(full.as_slice(), logits.as_slice(), q.target);
                        let clean_top1 = top_k_indices(clean.logits.as_slice(), 1)[0];
                        let fault_top1 = top_k_indices(logits.as_slice(), 1)[0];
                        if fault_top1 != clean_top1 {
                            out.flips += 1;
                            if candidates.contains(&clean_top1) {
                                out.spikes += 1;
                            } else {
                                out.drops += 1;
                            }
                        }
                    }
                    out
                });
            // Merge in shard order: worker-count invariant.
            let mut acc = QualityAccumulator::new(PRECISION_AT);
            let (mut flips, mut drops, mut spikes) = (0u64, 0u64, 0u64);
            let mut read_rows = vec![false; classifier.categories()];
            for s in &shards {
                acc.merge(&s.acc);
                flips += s.flips;
                drops += s.drops;
                spikes += s.spikes;
                for (dst, &src) in read_rows.iter_mut().zip(&s.read_rows) {
                    *dst |= src;
                }
            }
            let corrupted_rows_read = weights_rows
                .iter()
                .zip(&read_rows)
                .filter(|&(&corrupt, &read)| corrupt && read)
                .count();
            let corrupted_total = weights_rows.iter().filter(|&&c| c).count();
            tiers.push(TierOutcome {
                candidates: tier,
                quality: acc.finish(),
                fault_top1_flips: flips,
                flips_candidate_drop: drops,
                flips_logit_spike: spikes,
                corrupted_rows_read,
                corrupted_rows_masked: corrupted_total - corrupted_rows_read,
            });
        }
        points.push(SweepPoint {
            refresh_multiplier: m,
            ber: spec.model.ber,
            ecc: spec.ecc,
            screener: screener_stats,
            weights: weights_stats,
            screener_rows_corrupted: screener_rows.iter().filter(|&&r| r).count(),
            weights_rows_corrupted: weights_rows.iter().filter(|&&r| r).count(),
            tiers,
            refresh_energy_nj: 0.0,
            total_energy_nj: 0.0,
            ecc_energy_nj: 0.0,
            ecc_latency_ns: 0.0,
        });
    }
    Ok(points)
}

/// Why a resilience sweep failed: a fault-injection error, or an audited
/// surrogate prediction outside its declared bound.
#[derive(Debug)]
pub enum SweepError {
    /// Injection failed (unfrozen or per-row-scale screener).
    Tensor(TensorError),
    /// The surrogate cost model missed its audited error bound.
    Surrogate(SurrogateViolation),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Tensor(e) => write!(f, "{e}"),
            SweepError::Surrogate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<TensorError> for SweepError {
    fn from(e: TensorError) -> Self {
        SweepError::Tensor(e)
    }
}

impl From<SurrogateViolation> for SweepError {
    fn from(e: SurrogateViolation) -> Self {
        SweepError::Surrogate(e)
    }
}

/// [`run_sweep`] joined with the system energy at each refresh setting:
/// the whole rank-parallel system runs `job` under an
/// [`EnergyModel`] with the point's refresh multiplier (and the SEC-DED
/// surcharges when ECC is on), filling the energy fields of every point.
/// Optionally records `fault.*` metrics and per-point trace events.
///
/// # Errors
///
/// Propagates injection errors (unfrozen or per-row-scale screeners).
pub fn run_resilience_sweep(
    synth: &SyntheticClassifier,
    classifier: &ApproxClassifier,
    system: &SystemModel,
    job: &ClassificationJob,
    spec: &FaultSweepSpec,
    workers: usize,
    registry: Option<&mut MetricsRegistry>,
    trace: Option<&mut TraceBuffer>,
) -> Result<Vec<SweepPoint>, TensorError> {
    let mut cost = CostModel::new(CostBackend::CycleAccurate, spec.query_seed);
    run_resilience_sweep_with_cost(
        synth, classifier, system, job, spec, workers, registry, trace, &mut cost,
    )
    .map_err(|e| match e {
        SweepError::Tensor(t) => t,
        SweepError::Surrogate(v) => {
            unreachable!("cycle-accurate backend cannot violate: {v}")
        }
    })
}

/// [`run_resilience_sweep`] with an explicit cost backend: the per-point
/// energy join runs through `cost`, so a surrogate backend answers each
/// point in pure arithmetic (auditing a seeded fraction cycle-accurately)
/// while the cycle-accurate backend behaves exactly like
/// [`run_resilience_sweep`].
///
/// # Errors
///
/// Propagates injection errors, and [`SweepError::Surrogate`] when an
/// audited point misses the declared bound.
#[allow(clippy::too_many_arguments)]
pub fn run_resilience_sweep_with_cost(
    synth: &SyntheticClassifier,
    classifier: &ApproxClassifier,
    system: &SystemModel,
    job: &ClassificationJob,
    spec: &FaultSweepSpec,
    workers: usize,
    registry: Option<&mut MetricsRegistry>,
    mut trace: Option<&mut TraceBuffer>,
    cost: &mut CostModel,
) -> Result<Vec<SweepPoint>, SweepError> {
    let mut points = run_sweep(synth, classifier, spec, workers)?;
    for point in &mut points {
        // Start from the system's own per-rank energy model (the memory
        // preset's nominal coefficients), with any prior refresh/ECC
        // override cleared so each point applies its own.
        let mut dram = EnergyModel {
            refresh_interval_multiplier: 1.0,
            ecc_nj_per_access: 0.0,
            ..*system.energy_model()
        }
        .with_refresh_multiplier(point.refresh_multiplier);
        let mut logic = LogicEnergyModel::enmc_table5();
        if spec.ecc {
            dram = dram.with_ecc_surcharge(ECC_NJ_PER_BURST);
            logic = logic.with_ecc(ECC_MW);
        }
        let sys = system.clone().with_energy_model(dram);
        let context = format!(
            "fault-sweep energy join (multiplier {}, ecc {})",
            point.refresh_multiplier, spec.ecc
        );
        let result = cost.run_enmc(&sys, job, &context)?;
        let report = result.rank_report.as_ref().expect("ENMC runs are simulated");
        let energy = result.energy.expect("ENMC runs carry energy");
        let ranks = sys.total_ranks as f64;
        point.refresh_energy_nj = dram.refresh_energy_nj(report.dram.refreshes) * ranks;
        point.ecc_energy_nj = if spec.ecc {
            (report.dram.reads + report.dram.writes) as f64 * ECC_NJ_PER_BURST * ranks
        } else {
            0.0
        };
        point.ecc_latency_ns =
            if spec.ecc { report.dram.reads as f64 * ECC_NS_PER_BURST } else { 0.0 };
        // Logic-side ECC power: charge it explicitly on top of the scheme's
        // Table 5 logic model (which the system applies internally).
        let ecc_logic_nj = if spec.ecc {
            ECC_MW * report.dram_cycles as f64 * logic.tck_ps * 1e-12 * 1e-3 * 1e9 * ranks
        } else {
            0.0
        };
        point.total_energy_nj = energy.total_nj() + ecc_logic_nj;
        point.ecc_energy_nj += ecc_logic_nj;
        if let Some(tb) = trace.as_deref_mut() {
            tb.record(
                TraceEvent::instant("fault_point", "fault", 0, 0, 0)
                    .with_arg("refresh_multiplier_milli", (point.refresh_multiplier * 1e3) as u64)
                    .with_arg("raw_flips", point.screener.raw_flips + point.weights.raw_flips)
                    .with_arg(
                        "residual_flips",
                        point.screener.residual_flips + point.weights.residual_flips,
                    )
                    .with_arg("top1_flips", point.primary().fault_top1_flips),
            );
        }
    }
    if let Some(registry) = registry {
        record_metrics(&points, registry);
    }
    Ok(points)
}

/// Records sweep aggregates into the metrics registry under `fault.*`.
pub fn record_metrics(points: &[SweepPoint], registry: &mut MetricsRegistry) {
    for p in points {
        let m = format!("{}", p.refresh_multiplier);
        let labels: &[(&str, &str)] = &[("multiplier", m.as_str())];
        registry.counter_add("fault.raw_flips", labels, p.screener.raw_flips + p.weights.raw_flips);
        registry.counter_add(
            "fault.residual_flips",
            labels,
            p.screener.residual_flips + p.weights.residual_flips,
        );
        registry.counter_add("fault.ecc_corrected", labels, p.ecc_corrected());
        registry.counter_add("fault.ecc_uncorrected", labels, p.ecc_uncorrected());
        registry.counter_add("fault.top1_flips", labels, p.primary().fault_top1_flips);
        registry.gauge_set("fault.quality_degradation_pct", labels, p.quality_degradation_pct());
        registry.gauge_set("fault.refresh_energy_nj", labels, p.refresh_energy_nj);
    }
}

/// One row of the quality-vs-refresh-energy Pareto frontier.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParetoRow {
    /// Refresh-interval multiplier.
    pub refresh_multiplier: f64,
    /// System refresh energy at that multiplier, nJ.
    pub refresh_energy_nj: f64,
    /// Best (running-minimum) headline top-1 agreement at ≤ this
    /// multiplier — monotone nonincreasing by construction.
    pub top1_agreement: f64,
}

/// Derives the Pareto frontier from raw sweep points: sorted by
/// multiplier (refresh energy nonincreasing, since the nominal REF count
/// is fixed by the workload), with quality replaced by its running
/// minimum so the curve is monotone nonincreasing even when individual
/// sample points jitter upward.
pub fn pareto_frontier(points: &[SweepPoint]) -> Vec<ParetoRow> {
    let mut sorted: Vec<&SweepPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.refresh_multiplier
            .partial_cmp(&b.refresh_multiplier)
            .expect("multipliers are finite")
    });
    let mut best = f64::INFINITY;
    sorted
        .into_iter()
        .map(|p| {
            best = best.min(p.primary().quality.top1_agreement);
            ParetoRow {
                refresh_multiplier: p.refresh_multiplier,
                refresh_energy_nj: p.refresh_energy_nj,
                top1_agreement: best,
            }
        })
        .collect()
}
