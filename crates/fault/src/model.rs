//! Seeded, deterministic bit-error models for approximate DRAM.
//!
//! Three EDEN-style error mechanisms compose into one [`FaultModel`]:
//!
//! * **Uniform BER** — every stored bit flips independently with
//!   probability `ber` on each read (transient channel noise).
//! * **Retention failures** — stretching the refresh interval by a
//!   multiplier `m` lets weak cells leak past the sense threshold before
//!   their next refresh. Each cell fails with probability
//!   `retention_base · (m − 1)²` (the super-linear tail of measured
//!   retention-time distributions); a failed cell is *stuck at* a
//!   per-cell polarity, so stored bits that already match the polarity
//!   are unaffected. The failed-cell map is **nested in `m`**: a cell
//!   that fails at `m₁` also fails at every `m₂ > m₁`.
//! * **Weak columns (reduced tRCD)** — shaving the activate-to-read
//!   timing margin makes a fraction of bit columns marginal; marginal
//!   bits sample incorrectly on ~half their reads.
//!
//! Every decision is a stateless [SplitMix64-finalizer] hash of
//! `(seed, mechanism tag, word address, bit index)` — no RNG streams, so
//! injection does not depend on iteration order, sharding, or worker
//! count, and a zero-rate model is exactly the identity.
//!
//! [SplitMix64-finalizer]: https://prng.di.unimi.it/splitmix64.c

/// Mechanism tags keep the three hash families independent.
const TAG_UNIFORM: u64 = 0x1;
const TAG_RETENTION_CELL: u64 = 0x2;
const TAG_RETENTION_POLARITY: u64 = 0x3;
const TAG_WEAK_COLUMN: u64 = 0x4;
const TAG_WEAK_SAMPLE: u64 = 0x5;

/// Default coefficient of the retention-failure probability curve.
pub const RETENTION_BASE: f64 = 2.0e-5;

/// Words per DRAM row for the weak-column geometry (1 KiB row / 8 B word).
const WORDS_PER_ROW: u64 = 128;

/// Stateless per-bit hash: SplitMix64 finalizer over a mixed key.
fn mix(seed: u64, tag: u64, addr: u64, bit: u32) -> u64 {
    let mut x = seed
        ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ addr.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (bit as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Uniform in `[0, 1)` from the top 53 bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A composed approximate-DRAM error model (all mechanisms seeded and
/// deterministic; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultModel {
    /// Seed shared by all three hash families.
    pub seed: u64,
    /// Uniform per-bit flip probability per read.
    pub ber: f64,
    /// Refresh-interval stretch factor `m ≥ 1` (1 = nominal 64 ms, no
    /// retention failures).
    pub refresh_multiplier: f64,
    /// Coefficient of the retention curve `p_fail = base · (m − 1)²`.
    pub retention_base: f64,
    /// Fraction of bit columns that are tRCD-marginal (0 disables the
    /// weak-column mechanism).
    pub weak_column_frac: f64,
}

impl FaultModel {
    /// A model that injects nothing: zero BER, nominal refresh, no weak
    /// columns. Running it is exactly the identity on every word.
    pub fn nominal(seed: u64) -> Self {
        FaultModel {
            seed,
            ber: 0.0,
            refresh_multiplier: 1.0,
            retention_base: RETENTION_BASE,
            weak_column_frac: 0.0,
        }
    }

    /// Sets the uniform BER.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `[0, 1]`.
    pub fn with_ber(mut self, ber: f64) -> Self {
        assert!(ber.is_finite() && (0.0..=1.0).contains(&ber), "BER must be in [0,1], got {ber}");
        self.ber = ber;
        self
    }

    /// Sets the refresh-interval multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not finite or `m < 1`.
    pub fn with_refresh_multiplier(mut self, m: f64) -> Self {
        assert!(m.is_finite() && m >= 1.0, "refresh multiplier must be >= 1, got {m}");
        self.refresh_multiplier = m;
        self
    }

    /// Sets the retention-curve base coefficient — the memory-technology
    /// hook: each DRAM family sits on a different retention curve
    /// (`enmc_mem::ErrorProfile::retention_base`).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not finite or negative.
    pub fn with_retention_base(mut self, base: f64) -> Self {
        assert!(base.is_finite() && base >= 0.0, "retention base must be >= 0, got {base}");
        self.retention_base = base;
        self
    }

    /// Sets the tRCD weak-column fraction.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1]`.
    pub fn with_weak_columns(mut self, frac: f64) -> Self {
        assert!(
            frac.is_finite() && (0.0..=1.0).contains(&frac),
            "weak-column fraction must be in [0,1], got {frac}"
        );
        self.weak_column_frac = frac;
        self
    }

    /// Per-cell retention failure probability at the configured multiplier
    /// (0 at nominal refresh, capped at 0.5).
    pub fn retention_fail_prob(&self) -> f64 {
        let slack = (self.refresh_multiplier - 1.0).max(0.0);
        (self.retention_base * slack * slack).min(0.5)
    }

    /// `true` when no mechanism can flip a bit — the corruption pass is
    /// the identity and callers may skip it entirely.
    pub fn is_nominal(&self) -> bool {
        self.ber == 0.0 && self.retention_fail_prob() == 0.0 && self.weak_column_frac == 0.0
    }

    /// Whether the retention cell at `(addr, bit)` has failed, and if so
    /// its stuck-at polarity. The failed-cell set is nested in the
    /// refresh multiplier by construction (`u < p(m)` with `p` monotone).
    fn retention_cell(&self, addr: u64, bit: u32) -> Option<bool> {
        let p = self.retention_fail_prob();
        if p > 0.0 && unit(mix(self.seed, TAG_RETENTION_CELL, addr, bit)) < p {
            Some(mix(self.seed, TAG_RETENTION_POLARITY, addr, bit) & 1 == 1)
        } else {
            None
        }
    }

    /// Corrupts one bit read from `(addr, bit)` holding `value`.
    fn corrupt_bit(&self, addr: u64, bit: u32, value: bool) -> bool {
        let mut v = value;
        // Retention: the stored charge decayed to the stuck polarity.
        if let Some(polarity) = self.retention_cell(addr, bit) {
            v = polarity;
        }
        // Reduced tRCD: marginal columns sample wrong on ~half the reads.
        // Column identity = (word position within the DRAM row, bit lane).
        if self.weak_column_frac > 0.0 {
            let col = addr % WORDS_PER_ROW;
            if unit(mix(self.seed, TAG_WEAK_COLUMN, col, bit)) < self.weak_column_frac
                && mix(self.seed, TAG_WEAK_SAMPLE, addr, bit) & 1 == 1
            {
                v = !v;
            }
        }
        // Transient channel noise.
        if self.ber > 0.0 && unit(mix(self.seed, TAG_UNIFORM, addr, bit)) < self.ber {
            v = !v;
        }
        v
    }

    /// Corrupts a 64-bit word read from `addr`.
    pub fn corrupt_word(&self, addr: u64, data: u64) -> u64 {
        if self.is_nominal() {
            return data;
        }
        let mut out = 0u64;
        for bit in 0..64 {
            if self.corrupt_bit(addr, bit, data >> bit & 1 == 1) {
                out |= 1 << bit;
            }
        }
        out
    }

    /// Corrupts a full (72,64) codeword read from `addr`: the 64 data bits
    /// at bit indices `0..64` and the 8 parity-byte bits at `64..72` —
    /// check bits live in the same DRAM row and decay like everything else.
    pub fn corrupt_codeword(&self, addr: u64, data: u64, parity: u8) -> (u64, u8) {
        if self.is_nominal() {
            return (data, parity);
        }
        let data = self.corrupt_word(addr, data);
        let mut p = 0u8;
        for bit in 0..8u32 {
            if self.corrupt_bit(addr, 64 + bit, parity >> bit & 1 == 1) {
                p |= 1 << bit;
            }
        }
        (data, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_model_is_the_identity() {
        let m = FaultModel::nominal(42);
        assert!(m.is_nominal());
        for addr in [0u64, 8, 4096] {
            assert_eq!(m.corrupt_word(addr, 0xDEAD_BEEF), 0xDEAD_BEEF);
            assert_eq!(m.corrupt_codeword(addr, 7, 0x1f), (7, 0x1f));
        }
    }

    #[test]
    fn corruption_is_deterministic_and_addr_dependent() {
        let m = FaultModel::nominal(1).with_ber(0.05);
        let a = m.corrupt_word(64, u64::MAX);
        assert_eq!(a, m.corrupt_word(64, u64::MAX), "same (seed, addr) ⇒ same flips");
        let over_addrs: Vec<u64> = (0..64).map(|i| m.corrupt_word(i * 8, u64::MAX)).collect();
        assert!(over_addrs.iter().any(|&w| w != u64::MAX), "5% BER must flip something");
        assert!(over_addrs.windows(2).any(|w| w[0] != w[1]), "flips must vary with address");
        // A different seed draws a different error map.
        let m2 = FaultModel::nominal(2).with_ber(0.05);
        assert!((0..64).any(|i| m.corrupt_word(i * 8, 0) != m2.corrupt_word(i * 8, 0)));
    }

    #[test]
    fn ber_flip_rate_is_statistically_plausible() {
        let m = FaultModel::nominal(9).with_ber(0.01);
        let words = 4096u64;
        let flips: u32 = (0..words).map(|i| (m.corrupt_word(i * 8, 0)).count_ones()).sum();
        let expect = words as f64 * 64.0 * 0.01;
        let got = flips as f64;
        assert!((expect * 0.7..expect * 1.3).contains(&got), "{got} flips vs expected {expect}");
    }

    #[test]
    fn retention_failures_appear_only_past_nominal_refresh() {
        let base = FaultModel::nominal(3);
        assert_eq!(base.retention_fail_prob(), 0.0);
        let relaxed = base.with_refresh_multiplier(64.0);
        let p = relaxed.retention_fail_prob();
        assert!(p > 0.0 && p <= 0.5);
        let flips: u32 =
            (0..4096u64).map(|i| (relaxed.corrupt_word(i * 8, 0) ).count_ones()).sum();
        assert!(flips > 0, "m=64 must produce retention failures");
    }

    #[test]
    fn retention_cell_map_is_nested_in_the_multiplier() {
        // Stuck-at polarity is independent of m, and the failed-cell set at
        // a smaller multiplier is a subset of the set at a larger one, so
        // on all-ones data: bits cleared at m=16 ⊆ bits cleared at m=64.
        let m16 = FaultModel::nominal(5).with_refresh_multiplier(16.0);
        let m64 = FaultModel::nominal(5).with_refresh_multiplier(64.0);
        let mut nontrivial = false;
        for i in 0..4096u64 {
            let addr = i * 8;
            let w16 = m16.corrupt_word(addr, u64::MAX);
            let w64 = m64.corrupt_word(addr, u64::MAX);
            let cleared16 = !w16;
            let cleared64 = !w64;
            assert_eq!(cleared16 & !cleared64, 0, "addr {addr}: m=16 flip absent at m=64");
            nontrivial |= cleared64 != 0;
        }
        assert!(nontrivial, "m=64 must clear some bits of all-ones data");
    }

    #[test]
    fn weak_columns_repeat_across_rows_and_flip_half_the_reads() {
        let m = FaultModel::nominal(11).with_weak_columns(0.05);
        // Find a weak (column, lane): scan row 0.
        let mut weak = None;
        'scan: for col in 0..WORDS_PER_ROW {
            for bit in 0..64u32 {
                if unit(mix(m.seed, TAG_WEAK_COLUMN, col, bit)) < m.weak_column_frac {
                    weak = Some((col, bit));
                    break 'scan;
                }
            }
        }
        let (col, bit) = weak.expect("5% of 8192 columns must include a weak one");
        // The same column is weak in every DRAM row; sampling error hits
        // about half the reads.
        let rows = 512u64;
        let flips = (0..rows)
            .filter(|r| {
                let addr = r * WORDS_PER_ROW + col; // word index; addr unit irrelevant
                m.corrupt_word(addr, 0) >> bit & 1 == 1
            })
            .count();
        assert!(
            (rows as usize / 4..=3 * rows as usize / 4).contains(&flips),
            "weak column flipped {flips}/{rows} reads"
        );
    }

    #[test]
    fn codeword_corruption_covers_check_bits() {
        let m = FaultModel::nominal(13).with_ber(0.05);
        let changed = (0..256u64)
            .map(|i| m.corrupt_codeword(i * 8, 0, 0))
            .any(|(_, p)| p != 0);
        assert!(changed, "parity bits must be corruptible too");
    }

    #[test]
    fn retention_base_scales_the_curve() {
        let m = FaultModel::nominal(7).with_refresh_multiplier(9.0);
        let p_default = m.retention_fail_prob();
        assert!((p_default - RETENTION_BASE * 64.0).abs() < 1e-12);
        let weaker = m.with_retention_base(RETENTION_BASE * 2.0);
        assert!((weaker.retention_fail_prob() - 2.0 * p_default).abs() < 1e-12);
        // Zero base disables the mechanism outright.
        let immune = m.with_retention_base(0.0);
        assert_eq!(immune.retention_fail_prob(), 0.0);
        assert_eq!(immune.corrupt_word(128, u64::MAX), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "retention base")]
    fn negative_retention_base_rejected() {
        FaultModel::nominal(0).with_retention_base(-1.0);
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn invalid_ber_rejected() {
        FaultModel::nominal(0).with_ber(1.5);
    }

    #[test]
    #[should_panic(expected = "refresh multiplier")]
    fn invalid_multiplier_rejected() {
        FaultModel::nominal(0).with_refresh_multiplier(0.0);
    }
}
