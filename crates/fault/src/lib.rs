//! Fault injection and resilience analysis for approximate DRAM.
//!
//! ENMC streams its screening weights `W̃` out of DRAM on every query, so the
//! whole screening pipeline rides on weight integrity. EDEN (Koppula et al.,
//! MICRO '19) showed that DNN inference tolerates *approximate DRAM* —
//! relaxed refresh intervals and reduced tRCD — for large energy wins. This
//! crate turns the reproduction into that robustness testbed:
//!
//! * [`model`] — seeded, deterministic bit-error models: uniform BER,
//!   retention-failure cell maps keyed by a refresh-interval multiplier, and
//!   a reduced-tRCD weak-column model. Every per-bit decision is a stateless
//!   hash of `(seed, surface, word address, bit index)`, so injection is
//!   independent of iteration order and worker count.
//! * [`ecc`] — a SEC-DED (72,64) extended-Hamming layer with
//!   corrected/detected-uncorrectable counters and the per-access
//!   latency/energy surcharges the energy model charges for it.
//! * [`inject`] — corruption of the packed/quantized weight images at DRAM
//!   read granularity (64-bit words, 72-bit codewords under ECC), for both
//!   the screener's INT stream and the exact-path FP32 rows.
//! * [`sweep`] — the resilience pipeline: re-screens a query set against
//!   corrupted weights, reuses [`enmc_model::quality::QualityAccumulator`]
//!   per shard, attributes top-1 flips to candidate drops vs logit spikes,
//!   counts how many corrupted exact rows screening *masked* (pruned rows
//!   are never read), and joins each refresh-multiplier point with the
//!   relaxed-refresh DRAM energy for a quality-vs-energy Pareto curve.
//!
//! Determinism contract: with a nominal [`model::FaultModel`] (zero BER,
//! multiplier 1, no weak columns) the injected pipeline is byte-identical to
//! the fault-free pipeline at any worker count — the CI `fault-smoke` job
//! diffs exactly that.

pub mod ecc;
pub mod inject;
pub mod model;
pub mod sweep;

pub use ecc::{Decoded, EccCounters, ECC_MW, ECC_NJ_PER_BURST, ECC_NS_PER_BURST};
pub use inject::{corrupt_image, corrupt_matrix, corrupt_screener, InjectionStats};
pub use model::FaultModel;
pub use sweep::{
    pareto_frontier, run_resilience_sweep, run_resilience_sweep_with_cost, run_sweep,
    FaultSweepSpec, ParetoRow, SweepError, SweepPoint, TierOutcome, FAULT_SHARDS,
};
