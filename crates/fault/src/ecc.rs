//! SEC-DED (72,64) extended Hamming code.
//!
//! The standard server-DIMM word: 64 data bits protected by 7 Hamming
//! parity bits (at power-of-two codeword positions) plus one overall
//! parity bit. Single bit errors are corrected, double bit errors are
//! detected but not correctable. The decoder reports which happened so the
//! resilience sweep can count corrected vs detected-uncorrectable words.
//!
//! Codeword layout: positions `1..=71` hold the Hamming code (parity at
//! positions 1, 2, 4, 8, 16, 32, 64; data at the 64 remaining positions in
//! ascending order), and the overall parity bit makes the XOR of all 72
//! stored bits even. The parity byte packs the seven Hamming bits in bits
//! `0..=6` and the overall bit in bit 7.

/// Codeword position of each data bit: the `i`-th non-power-of-two in
/// `1..=71`.
const DATA_POS: [u8; 64] = build_data_positions();

const fn build_data_positions() -> [u8; 64] {
    let mut out = [0u8; 64];
    let mut pos = 1u8;
    let mut i = 0usize;
    while i < 64 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

/// XOR of the codeword positions of all set data bits — the Hamming parity
/// vector (bit `j` of the result is parity bit `2^j`).
fn position_xor(data: u64) -> u8 {
    let mut acc = 0u8;
    let mut rest = data;
    while rest != 0 {
        let i = rest.trailing_zeros() as usize;
        acc ^= DATA_POS[i];
        rest &= rest - 1;
    }
    acc
}

/// Encodes 64 data bits into the (72,64) parity byte: Hamming parity in
/// bits `0..=6`, overall parity in bit 7.
pub fn encode(data: u64) -> u8 {
    let hamming = position_xor(data) & 0x7f;
    let overall =
        ((data.count_ones() + u32::from(hamming).count_ones()) & 1) as u8;
    hamming | (overall << 7)
}

/// Decode outcome of one (72,64) word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected; payload returned unchanged.
    Clean(u64),
    /// A single bit error (in data, Hamming parity, or the overall bit)
    /// was corrected; the repaired payload is returned.
    Corrected(u64),
    /// A multi-bit error was detected but cannot be corrected. The raw
    /// (poisoned) payload is passed through — real controllers raise a
    /// machine check here; the simulator models value passthrough so the
    /// quality impact of uncorrectable words is observable.
    Uncorrectable(u64),
}

impl Decoded {
    /// The payload the consumer sees, whatever the outcome.
    pub fn payload(self) -> u64 {
        match self {
            Decoded::Clean(d) | Decoded::Corrected(d) | Decoded::Uncorrectable(d) => d,
        }
    }
}

/// Decodes a received `(data, parity)` pair.
pub fn decode(data: u64, parity: u8) -> Decoded {
    let syndrome = (position_xor(data) ^ parity) & 0x7f;
    // Overall parity covers all 72 stored bits; odd total ⇒ odd error count.
    let odd = (data.count_ones() + u32::from(parity).count_ones()) & 1 == 1;
    match (syndrome, odd) {
        (0, false) => Decoded::Clean(data),
        (0, true) => Decoded::Corrected(data), // the overall parity bit itself
        (s, true) => {
            if s.is_power_of_two() {
                // A Hamming parity bit flipped; the data is intact.
                Decoded::Corrected(data)
            } else if let Some(i) = DATA_POS.iter().position(|&p| p == s) {
                Decoded::Corrected(data ^ (1u64 << i))
            } else {
                // Syndrome points outside the codeword: ≥3 errors.
                Decoded::Uncorrectable(data)
            }
        }
        (_, false) => Decoded::Uncorrectable(data),
    }
}

/// Corrected / detected-uncorrectable counters across many decoded words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct EccCounters {
    /// Words decoded.
    pub words: u64,
    /// Words where the decoder repaired a single bit error.
    pub corrected: u64,
    /// Words with a detected but uncorrectable multi-bit error.
    pub detected_uncorrected: u64,
}

impl EccCounters {
    /// Folds `other` into `self` (commutative element-wise sum).
    pub fn merge(&mut self, other: &EccCounters) {
        self.words += other.words;
        self.corrected += other.corrected;
        self.detected_uncorrected += other.detected_uncorrected;
    }

    /// Decodes and counts in one step.
    pub fn decode_counted(&mut self, data: u64, parity: u8) -> Decoded {
        let out = decode(data, parity);
        self.words += 1;
        match out {
            Decoded::Clean(_) => {}
            Decoded::Corrected(_) => self.corrected += 1,
            Decoded::Uncorrectable(_) => self.detected_uncorrected += 1,
        }
        out
    }
}

/// Extra DRAM energy per 64-byte burst for the eight (72,64) decodes it
/// carries, in nanojoules (≈15 pJ per decode at 22 nm, scaled from the
/// Table 5 methodology).
pub const ECC_NJ_PER_BURST: f64 = 0.12;

/// Always-on SEC-DED encode/decode logic power next to the Screener's
/// stream buffer, in milliwatts.
pub const ECC_MW: f64 = 11.6;

/// Pipeline latency the decoder adds to each read burst, in nanoseconds
/// (one extra DRAM-bus cycle at DDR4-2400).
pub const ECC_NS_PER_BURST: f64 = 0.833;

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 6] = [
        0,
        u64::MAX,
        0xDEAD_BEEF_CAFE_F00D,
        0x0123_4567_89AB_CDEF,
        1,
        1 << 63,
    ];

    #[test]
    fn data_positions_are_the_non_powers_of_two() {
        assert_eq!(DATA_POS[0], 3);
        assert_eq!(DATA_POS[1], 5);
        assert_eq!(DATA_POS[63], 71);
        for p in DATA_POS {
            assert!(!p.is_power_of_two() && (1..=71).contains(&p));
        }
        let mut sorted = DATA_POS.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn clean_words_decode_clean() {
        for d in SAMPLES {
            assert_eq!(decode(d, encode(d)), Decoded::Clean(d));
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        for d in SAMPLES {
            let parity = encode(d);
            // Flip each of the 64 data bits.
            for b in 0..64 {
                let got = decode(d ^ (1u64 << b), parity);
                assert_eq!(got, Decoded::Corrected(d), "data bit {b} of {d:#x}");
            }
            // Flip each of the 8 parity-byte bits.
            for b in 0..8 {
                let got = decode(d, parity ^ (1u8 << b));
                assert_eq!(got, Decoded::Corrected(d), "parity bit {b} of {d:#x}");
            }
        }
    }

    #[test]
    fn double_bit_errors_are_detected_not_miscorrected() {
        for d in SAMPLES {
            let parity = encode(d);
            for (a, b) in [(0u32, 1u32), (5, 40), (63, 17), (2, 33)] {
                let corrupted = d ^ (1u64 << a) ^ (1u64 << b);
                assert_eq!(
                    decode(corrupted, parity),
                    Decoded::Uncorrectable(corrupted),
                    "data bits {a},{b} of {d:#x}"
                );
            }
            // One data bit + one Hamming parity bit.
            let corrupted = d ^ 1;
            assert_eq!(
                decode(corrupted, parity ^ 0b0000_0100),
                Decoded::Uncorrectable(corrupted)
            );
            // One data bit + the overall parity bit.
            let corrupted = d ^ (1u64 << 9);
            assert_eq!(
                decode(corrupted, parity ^ 0x80),
                Decoded::Uncorrectable(corrupted)
            );
        }
    }

    #[test]
    fn counters_track_outcomes() {
        let mut c = EccCounters::default();
        let d = 0xABCD_u64;
        let p = encode(d);
        assert_eq!(c.decode_counted(d, p), Decoded::Clean(d));
        assert_eq!(c.decode_counted(d ^ 2, p), Decoded::Corrected(d));
        assert_eq!(c.decode_counted(d ^ 3, p), Decoded::Uncorrectable(d ^ 3));
        assert_eq!(c, EccCounters { words: 3, corrected: 1, detected_uncorrected: 1 });
        let mut sum = c;
        sum.merge(&c);
        assert_eq!(sum.words, 6);
        assert_eq!(sum.corrected, 2);
    }
}
