//! Memory-technology presets: the device as a *parameter*, not a constant.
//!
//! Every earlier layer of the reproduction pinned the platform to the
//! paper's Table 3 DDR4 bin — timing constants, conformance rules, energy
//! coefficients, and the fault models all assumed one device. This crate
//! bundles everything device-specific into a [`MemPreset`] selected by a
//! [`MemTech`] tag, in the picoram style of a `Timings` value chosen per
//! device:
//!
//! * JEDEC-style timing constraints ([`enmc_dram::config::Timing`]) that
//!   the controller, `TimingChecker`, and golden model all derive their
//!   constraint sets from,
//! * bank/channel geometry ([`enmc_dram::config::Organization`]),
//! * per-command and background energy coefficients
//!   ([`enmc_dram::energy::EnergyModel`]), and
//! * a per-technology [`ErrorProfile`] (BER scale, retention-curve base,
//!   weak-column incidence) consumed by `enmc-fault`.
//!
//! The [`MemTech::Ddr4_2666`] baseline reproduces the existing Table 3
//! platform **bit-exactly** (same `DramConfig`, same `EnergyModel`), so
//! selecting no preset — or the default one — changes nothing about any
//! report the repo has ever blessed. The other three presets are
//! plausible same-capacity stand-ins for their families, not certified
//! JEDEC bins; DESIGN.md documents what each models and omits.

use enmc_dram::config::{DramConfig, Organization, PagePolicy, Timing};
use enmc_dram::energy::EnergyModel;

/// The four supported memory technologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub enum MemTech {
    /// The paper's Table 3 DDR4 reference bin (the docs' "DDR4-2666"
    /// platform). Bit-exact alias of the pre-preset configuration.
    Ddr4_2666,
    /// DDR5-4800-class: twice the transfer rate, 8 bank groups, higher
    /// absolute core latencies, on-die-ECC-assisted error profile.
    Ddr5_4800,
    /// LPDDR4-3200-class: low background power, slower core timing,
    /// weaker retention.
    Lpddr4_3200,
    /// HBM2-style wide/slow-clock stack: short latencies in cycles at a
    /// 1 GHz clock, high background power, strong retention.
    Hbm2,
}

impl MemTech {
    /// All presets, in canonical (baseline-first) order.
    pub const ALL: [MemTech; 4] =
        [MemTech::Ddr4_2666, MemTech::Ddr5_4800, MemTech::Lpddr4_3200, MemTech::Hbm2];

    /// Canonical CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            MemTech::Ddr4_2666 => "ddr4-2666",
            MemTech::Ddr5_4800 => "ddr5-4800",
            MemTech::Lpddr4_3200 => "lpddr4-3200",
            MemTech::Hbm2 => "hbm2",
        }
    }

    /// Short label used in design-point names (`m<label>` suffix).
    pub fn short(&self) -> &'static str {
        match self {
            MemTech::Ddr4_2666 => "d4",
            MemTech::Ddr5_4800 => "d5",
            MemTech::Lpddr4_3200 => "lp4",
            MemTech::Hbm2 => "hbm",
        }
    }

    /// Parses a canonical name (as printed by [`MemTech::name`]).
    pub fn parse(s: &str) -> Option<MemTech> {
        MemTech::ALL.iter().copied().find(|t| t.name() == s)
    }

    /// The full preset bundle for this technology.
    pub fn preset(&self) -> MemPreset {
        match self {
            MemTech::Ddr4_2666 => MemPreset::ddr4_2666(),
            MemTech::Ddr5_4800 => MemPreset::ddr5_4800(),
            MemTech::Lpddr4_3200 => MemPreset::lpddr4_3200(),
            MemTech::Hbm2 => MemPreset::hbm2(),
        }
    }
}

impl Default for MemTech {
    fn default() -> Self {
        MemTech::Ddr4_2666
    }
}

impl std::fmt::Display for MemTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-technology error behavior, consumed by `enmc-fault` (EDEN-style:
/// different DRAM families sit at different points on the
/// retention/variation curves).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ErrorProfile {
    /// Multiplier on the ambient bit-error rate a fault sweep requests
    /// (on-die ECC pushes it below 1; LPDDR's density/voltage push above).
    pub ber_scale: f64,
    /// Base coefficient of the retention-failure curve
    /// `p = base · (m − 1)²` for refresh-interval multiplier `m`.
    pub retention_base: f64,
    /// Multiplier on the weak-column incidence fraction.
    pub weak_column_scale: f64,
}

impl ErrorProfile {
    /// The baseline DDR4 profile: exactly the pre-preset fault-model
    /// behavior (`RETENTION_BASE = 2.0e-5`, unscaled BER and weak
    /// columns).
    pub fn ddr4_baseline() -> Self {
        ErrorProfile { ber_scale: 1.0, retention_base: 2.0e-5, weak_column_scale: 1.0 }
    }
}

/// Everything device-specific, bundled: timing, geometry, energy, errors.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemPreset {
    /// Which technology this is.
    pub tech: MemTech,
    /// JEDEC-style timing constraint set (drives controller, checker, and
    /// golden model alike).
    pub timing: Timing,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Per-rank energy coefficients (with `ranks = 1`; scale via
    /// [`MemPreset::energy_model`]).
    pub energy: EnergyModel,
    /// Per-technology error behavior.
    pub error: ErrorProfile,
}

impl MemPreset {
    /// The Table 3 baseline. `timing`/geometry/energy are byte-for-byte
    /// the pre-preset constants, so the default path is bit-exact.
    pub fn ddr4_2666() -> Self {
        MemPreset {
            tech: MemTech::Ddr4_2666,
            timing: Timing::ddr4_2400_table3(),
            bank_groups: 4,
            banks_per_group: 4,
            energy: EnergyModel::ddr4_2400_rank(1),
            error: ErrorProfile::ddr4_baseline(),
        }
    }

    /// DDR5-4800-class bin: 416 ps clock, 8 bank groups, deeper
    /// latencies in cycles, on-die ECC halves the ambient BER but the
    /// denser cells retain slightly worse.
    pub fn ddr5_4800() -> Self {
        MemPreset {
            tech: MemTech::Ddr5_4800,
            timing: Timing {
                tck_ps: 416,
                cl: 40,
                cwl: 36,
                trcd: 39,
                trp: 39,
                tras: 76,
                trc: 115,
                tccd_l: 12,
                tccd_s: 8,
                trrd_l: 12,
                trrd_s: 8,
                tfaw: 40,
                twr: 58,
                trtp: 18,
                twtr: 24,
                tbl: 8, // BL16 at twice the rate: still one 64 B burst
                trfc: 708,  // ~295 ns
                trefi: 9360, // ~3.9 µs (per-rank average with REFab)
            },
            bank_groups: 8,
            banks_per_group: 4,
            energy: EnergyModel {
                act_nj: 1.6,
                read_nj: 3.2,
                write_nj: 3.4,
                refresh_nj: 260.0,
                background_w: 0.42,
                powerdown_w: 0.09,
                tck_ps: 416.0,
                ranks: 1,
                refresh_interval_multiplier: 1.0,
                ecc_nj_per_access: 0.0,
            },
            error: ErrorProfile { ber_scale: 0.5, retention_base: 4.0e-5, weak_column_scale: 1.5 },
        }
    }

    /// LPDDR4-3200-class: 625 ps clock, modeled as 2 bank groups × 4
    /// banks (LPDDR4 has 8 flat banks; the group split keeps the
    /// same-vs-different-group constraint pair exercised — see
    /// DESIGN.md), very low background power, weak retention.
    pub fn lpddr4_3200() -> Self {
        MemPreset {
            tech: MemTech::Lpddr4_3200,
            timing: Timing {
                tck_ps: 625,
                cl: 28,
                cwl: 14,
                trcd: 29,
                trp: 34,
                tras: 67,
                trc: 101,
                tccd_l: 8,
                tccd_s: 8, // flat banks: no short/long split
                trrd_l: 10,
                trrd_s: 10,
                tfaw: 64,
                twr: 29,
                trtp: 12,
                twtr: 16,
                tbl: 8, // BL16
                trfc: 448,  // ~280 ns
                trefi: 6240, // ~3.9 µs
            },
            bank_groups: 2,
            banks_per_group: 4,
            energy: EnergyModel {
                act_nj: 1.1,
                read_nj: 2.0,
                write_nj: 2.2,
                refresh_nj: 140.0,
                background_w: 0.07,
                powerdown_w: 0.02,
                tck_ps: 625.0,
                ranks: 1,
                refresh_interval_multiplier: 1.0,
                ecc_nj_per_access: 0.0,
            },
            error: ErrorProfile { ber_scale: 1.2, retention_base: 5.0e-5, weak_column_scale: 2.0 },
        }
    }

    /// HBM2-style stack: wide interface at a slow 1 GHz clock, so core
    /// latencies are short *in cycles*; high background power from the
    /// stack, strong retention (low-temp-graded cells).
    pub fn hbm2() -> Self {
        MemPreset {
            tech: MemTech::Hbm2,
            timing: Timing {
                tck_ps: 1000,
                cl: 14,
                cwl: 7,
                trcd: 12,
                trp: 12,
                tras: 29,
                trc: 41,
                tccd_l: 4,
                tccd_s: 2,
                trrd_l: 6,
                trrd_s: 4,
                tfaw: 30,
                twr: 16,
                trtp: 7,
                twtr: 8,
                tbl: 2, // 128-bit pseudo-channel pair: 64 B in 2 clocks
                trfc: 260,
                trefi: 3900,
            },
            bank_groups: 4,
            banks_per_group: 4,
            energy: EnergyModel {
                act_nj: 0.9,
                read_nj: 1.7,
                write_nj: 1.8,
                refresh_nj: 180.0,
                background_w: 0.50,
                powerdown_w: 0.18,
                tck_ps: 1000.0,
                ranks: 1,
                refresh_interval_multiplier: 1.0,
                ecc_nj_per_access: 0.0,
            },
            error: ErrorProfile { ber_scale: 0.8, retention_base: 1.5e-5, weak_column_scale: 0.7 },
        }
    }

    /// The Table 3 system shape (8 channels × 8 ranks, 64 GiB/channel)
    /// under this technology's timing and bank geometry. For the DDR4
    /// baseline this is exactly `DramConfig::enmc_table3()`.
    pub fn system_config(&self) -> DramConfig {
        DramConfig {
            organization: Organization {
                channels: 8,
                ranks: 8,
                bank_groups: self.bank_groups,
                banks_per_group: self.banks_per_group,
                // Rows scale inversely with bank count so every preset
                // offers the same capacity (the preset layer varies
                // timing/energy/errors, never workload footprint).
                rows: 1_048_576 / (self.bank_groups * self.banks_per_group),
                columns: 1024,
                access_bytes: 64,
            },
            timing: self.timing,
            queue_depth: 64,
            page_policy: PagePolicy::Open,
        }
    }

    /// The single-rank timing domain one on-DIMM ENMC unit sees. For the
    /// DDR4 baseline this is exactly `DramConfig::enmc_single_rank()`.
    pub fn single_rank_config(&self) -> DramConfig {
        let mut cfg = self.system_config();
        cfg.organization.channels = 1;
        cfg.organization.ranks = 1;
        cfg
    }

    /// Per-rank energy model scaled to `ranks` ranks.
    pub fn energy_model(&self, ranks: usize) -> EnergyModel {
        EnergyModel { ranks, ..self.energy }
    }

    /// I/O clock frequency in MHz (rounded): the `dram_freq_mhz` input to
    /// `EnmcConfig::dram_cycles_per_logic_cycle`.
    pub fn io_mhz(&self) -> u64 {
        (1.0e6 / self.timing.tck_ps as f64).round() as u64
    }

    /// Nanoseconds per memory-clock cycle under this preset.
    pub fn ns_per_cycle(&self) -> f64 {
        self.timing.cycles_to_ns(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_bit_exact_with_table3() {
        let p = MemTech::Ddr4_2666.preset();
        assert_eq!(p.system_config(), DramConfig::enmc_table3());
        assert_eq!(p.single_rank_config(), DramConfig::enmc_single_rank());
        assert_eq!(p.energy_model(1), EnergyModel::ddr4_2400_rank(1));
        assert_eq!(p.energy_model(8), EnergyModel::ddr4_2400_rank(8));
        assert_eq!(p.error, ErrorProfile::ddr4_baseline());
    }

    #[test]
    fn names_round_trip() {
        for t in MemTech::ALL {
            assert_eq!(MemTech::parse(t.name()), Some(t));
            assert_eq!(t.preset().tech, t);
            assert_eq!(format!("{t}"), t.name());
        }
        assert_eq!(MemTech::parse("ddr4"), None);
        assert_eq!(MemTech::parse(""), None);
        assert_eq!(MemTech::default(), MemTech::Ddr4_2666);
    }

    #[test]
    fn short_labels_are_unique() {
        let mut shorts: Vec<_> = MemTech::ALL.iter().map(|t| t.short()).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), MemTech::ALL.len());
    }

    #[test]
    fn io_clock_ratios() {
        // round(1e6/tck)/400 drives the unit's DRAM:logic clock ratio.
        let mhz: Vec<u64> = MemTech::ALL.iter().map(|t| t.preset().io_mhz()).collect();
        assert_eq!(mhz, vec![1200, 2404, 1600, 1000]);
    }

    /// Every preset must satisfy the structural premises the generic
    /// conformance boundary tests rely on — the same inequalities
    /// `tests/ddr4_conformance.rs` exploits for the baseline.
    #[test]
    fn presets_satisfy_conformance_premises() {
        for t in MemTech::ALL {
            let p = t.preset();
            let tm = &p.timing;
            let name = t.name();
            // tRC decomposes as tRAS + tRP (closed-page golden model).
            assert_eq!(tm.trc, tm.tras + tm.trp, "{name}: tRC != tRAS + tRP");
            // RD→PRE via tRTP must land inside the tRAS window.
            assert!(tm.trcd + tm.trtp + tm.trp < tm.trc, "{name}: tRTP not testable");
            // tFAW must actually bind beyond 4 × tRRD_S.
            assert!(4 * tm.trrd_s < tm.tfaw, "{name}: tFAW non-binding");
            // WR→RD turnaround must bind after tCCD_L.
            assert!(tm.cwl + tm.tbl + tm.twtr > tm.tccd_l, "{name}: tWTR non-binding");
            // RD→WR bus turnaround must bind after tCCD_L.
            assert!(tm.cl + tm.tbl + 2 > tm.cwl + tm.tccd_l, "{name}: RD→WR non-binding");
            // Write recovery must extend the precharge point past tRAS.
            assert!(tm.trcd + tm.cwl + tm.tbl + tm.twr > tm.tras, "{name}: tWR non-binding");
            // Same/different-group ordering.
            assert!(tm.tccd_s <= tm.tccd_l, "{name}: tCCD ordering");
            assert!(tm.trrd_s <= tm.trrd_l, "{name}: tRRD ordering");
            // The boundary tests need a second bank group to probe the
            // short constraints.
            assert!(p.bank_groups >= 2, "{name}: needs >= 2 bank groups");
            // Refresh must be schedulable: tRFC far below tREFI.
            assert!(tm.trfc * 2 < tm.trefi, "{name}: refresh starves");
        }
    }

    #[test]
    fn error_profiles_are_positive_and_distinct() {
        let mut seen = Vec::new();
        for t in MemTech::ALL {
            let e = t.preset().error;
            assert!(e.ber_scale > 0.0 && e.ber_scale.is_finite());
            assert!(e.retention_base > 0.0 && e.retention_base.is_finite());
            assert!(e.weak_column_scale > 0.0 && e.weak_column_scale.is_finite());
            seen.push((e.ber_scale.to_bits(), e.retention_base.to_bits()));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), MemTech::ALL.len(), "profiles must differ per tech");
    }

    #[test]
    fn energy_models_use_the_preset_clock() {
        for t in MemTech::ALL {
            let p = t.preset();
            assert_eq!(p.energy.tck_ps, p.timing.tck_ps as f64, "{t}: clock mismatch");
            assert_eq!(p.energy.ranks, 1);
            assert_eq!(p.energy.refresh_interval_multiplier, 1.0);
            assert_eq!(p.energy.ecc_nj_per_access, 0.0);
            assert_eq!(p.energy_model(4).ranks, 4);
        }
    }

    #[test]
    fn capacity_is_preserved_across_presets() {
        // Same workload footprint fits on every technology: the preset
        // layer varies timing/energy/errors, never capacity.
        let base = MemTech::Ddr4_2666.preset().system_config().organization.total_bytes();
        for t in MemTech::ALL {
            let cfg = t.preset().system_config();
            assert_eq!(cfg.organization.total_bytes(), base, "{t}");
            assert_eq!(cfg.organization.banks_per_rank() >= 8, true, "{t}");
        }
    }

    #[test]
    fn bandwidth_ordering_matches_the_families() {
        let bw = |t: MemTech| t.preset().timing.peak_channel_bandwidth();
        assert!(bw(MemTech::Ddr5_4800) > bw(MemTech::Lpddr4_3200));
        assert!(bw(MemTech::Lpddr4_3200) > bw(MemTech::Ddr4_2666));
        assert!(bw(MemTech::Ddr4_2666) > bw(MemTech::Hbm2)); // per 64-bit channel
    }

    #[test]
    fn lpddr4_has_the_cheapest_background_power() {
        for t in [MemTech::Ddr4_2666, MemTech::Ddr5_4800, MemTech::Hbm2] {
            assert!(
                MemTech::Lpddr4_3200.preset().energy.background_w < t.preset().energy.background_w
            );
        }
    }

    #[test]
    fn hbm2_has_the_shortest_row_cycle_in_time() {
        let ns = |t: MemTech| {
            let p = t.preset();
            p.timing.cycles_to_ns(p.timing.trc)
        };
        for t in [MemTech::Ddr4_2666, MemTech::Ddr5_4800, MemTech::Lpddr4_3200] {
            assert!(ns(MemTech::Hbm2) < ns(t), "HBM2 {} vs {t} {}", ns(MemTech::Hbm2), ns(t));
        }
    }
}
