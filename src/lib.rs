//! # ENMC: Extreme Near-Memory Classification via Approximate Screening
//!
//! A full-system Rust reproduction of the MICRO'21 paper: the approximate
//! screening algorithm, a cycle-level DDR4 simulator, the ENMC near-memory
//! DIMM microarchitecture with its instruction set and compiler, the CPU
//! and NMP baselines, and the energy/area models — everything needed to
//! regenerate the paper's tables and figures.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `enmc-tensor` | matrices, quantization, projections, softmax |
//! | [`model`] | `enmc-model` | workloads (Table 2), synthetic data, quality metrics |
//! | [`screen`] | `enmc-screen` | approximate screening + SVD-softmax / FGD baselines |
//! | [`dram`] | `enmc-dram` | cycle-level DDR4 simulator (the Ramulator stand-in) |
//! | [`isa`] | `enmc-isa` | the ENMC instruction set + PRECHARGE-frame codec |
//! | [`compiler`] | `enmc-compiler` | tiling compiler to instruction streams |
//! | [`arch`] | `enmc-arch` | ENMC / NDA / Chameleon / TensorDIMM / CPU models |
//! | [`obs`] | `enmc-obs` | event tracing, metrics registry, structured run reports |
//! | [`perf`] | `enmc-perf` | cost attribution, self-profiler, bench-trajectory diffing |
//! | [`par`] | `enmc-par` | deterministic worker pool + execution policies |
//! | [`serve`] | `enmc-serve` | online serving simulator: arrivals, batching, SLO degradation |
//! | [`fault`] | `enmc-fault` | approximate-DRAM error models, SEC-DED ECC, resilience sweeps |
//! | [`surrogate`] | `enmc-surrogate` | hybrid-fidelity cost model with randomized cycle-accurate audits |
//! | [`tune`] | `enmc-tune` | design-space auto-tuner: Pareto frontiers, budgets, offload planning |
//! | [`fleet`] | `enmc-fleet` | fleet simulator: shard placement, multi-tenant routing, capacity |
//!
//! ## Quickstart
//!
//! ```
//! use enmc::pipeline::{Pipeline, PipelineConfig};
//!
//! // A small end-to-end run: synthesize a classifier, distill a screener,
//! // measure quality, and simulate the hardware.
//! let mut pipeline = Pipeline::build(&PipelineConfig {
//!     categories: 2000,
//!     hidden: 64,
//!     candidates: 40,
//!     train_queries: 64,
//!     seed: 7,
//!     ..Default::default()
//! })
//! .expect("valid configuration");
//! let quality = pipeline.evaluate_quality(50);
//! assert!(quality.top1_agreement > 0.8);
//! let perf = pipeline.simulate_enmc();
//! assert!(perf.ns > 0.0);
//! ```

pub use enmc_arch as arch;
pub use enmc_obs as obs;
pub use enmc_compiler as compiler;
pub use enmc_dram as dram;
pub use enmc_fault as fault;
pub use enmc_fleet as fleet;
pub use enmc_isa as isa;
pub use enmc_mem as mem;
pub use enmc_model as model;
pub use enmc_par as par;
pub use enmc_perf as perf;
pub use enmc_screen as screen;
pub use enmc_serve as serve;
pub use enmc_surrogate as surrogate;
pub use enmc_tensor as tensor;
pub use enmc_tune as tune;

pub mod cli;
pub mod pipeline;
pub mod resilience;
