//! High-level end-to-end pipeline: synthesize → distill → screen →
//! simulate.
//!
//! This is the programmer-facing API of Fig. 9(a): build an `ENMC`-backed
//! classifier once, then classify queries and/or ask for hardware
//! performance projections. The heavy lifting lives in the sub-crates;
//! this module wires them together the way the paper's evaluation does.

use enmc_arch::baseline::BaselineKind;
use enmc_arch::system::{ClassificationJob, Scheme, SchemeResult, ShardedRun, SystemModel, CHANNELS};
use enmc_perf::CostAttribution;
use enmc_model::quality::{QualityAccumulator, QualityReport};
use enmc_par::SimConfig;
use enmc_obs::report::{PhaseSpan, RunReport, Stopwatch};
use enmc_obs::MetricsRegistry;
use enmc_model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc_screen::infer::{ApproxClassifier, SelectionPolicy};
use enmc_screen::screener::{Screener, ScreenerConfig};
use enmc_screen::train::fit_least_squares;
use enmc_surrogate::{CostModel, SurrogateViolation};
use enmc_tensor::quant::Precision;

/// Fixed shard count for the quality-evaluation query stream. The
/// decomposition depends only on this constant (never on the worker
/// count), so sequential and parallel evaluations produce bit-identical
/// reports.
pub const QUALITY_SHARDS: usize = 8;

/// Configuration for a complete pipeline run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// Categories to materialize for the algorithm-level evaluation.
    pub categories: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Screening parameter-reduction scale (paper default 0.25).
    pub scale: f64,
    /// Screening precision (paper default INT4).
    pub precision: Precision,
    /// Candidates computed exactly per query.
    pub candidates: usize,
    /// Queries used to distill the screener.
    pub train_queries: usize,
    /// RNG seed for everything.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            categories: 4000,
            hidden: 128,
            scale: 0.25,
            precision: Precision::Int4,
            candidates: 80,
            train_queries: 128,
            seed: 0xe2c,
        }
    }
}

/// A built pipeline: synthetic workload + trained approximate classifier +
/// hardware models.
#[derive(Debug)]
pub struct Pipeline {
    synth: SyntheticClassifier,
    classifier: ApproxClassifier,
    system: SystemModel,
    config: PipelineConfig,
    /// Wall-clock timing of the build phases (synthesize / distill /
    /// assemble), in execution order.
    build_phases: Vec<PhaseSpan>,
}

impl Pipeline {
    /// Synthesizes the workload, distills the screening module (closed-form
    /// least squares) and assembles the approximate classifier.
    ///
    /// # Errors
    ///
    /// Returns a description when the configuration is degenerate (zero
    /// dimensions, more clusters than categories, …).
    pub fn build(config: &PipelineConfig) -> Result<Self, String> {
        let mut sw = Stopwatch::start();
        let host_phase = |name: &str, wall_ns: f64| PhaseSpan {
            name: name.to_string(),
            wall_ns,
            sim_cycles: 0,
            sim_ns: 0.0,
        };
        let synth_cfg = SynthesisConfig {
            categories: config.categories,
            hidden: config.hidden,
            clusters: 32.min(config.categories),
            row_noise: 0.4,
            zipf_exponent: 1.0,
            bias_scale: 1.0,
            query_signal: 2.2,
            seed: config.seed,
        };
        let synth = SyntheticClassifier::generate(&synth_cfg)?;
        let mut build_phases = vec![host_phase("synthesize", sw.lap_ns())];
        let screener_cfg = ScreenerConfig {
            scale: config.scale,
            precision: config.precision,
            per_row_scales: false, seed: config.seed ^ 0xabcd,
        };
        let mut screener = Screener::new(config.categories, config.hidden, &screener_cfg)
            .map_err(|e| e.to_string())?;
        let train: Vec<_> = synth
            .sample_queries_seeded(config.train_queries, config.seed ^ 0x7ea1)
            .into_iter()
            .map(|q| q.hidden)
            .collect();
        fit_least_squares(&mut screener, synth.weights(), synth.bias(), &train, 1e-4);
        build_phases.push(host_phase("distill", sw.lap_ns()));
        let mut classifier = ApproxClassifier::new(
            synth.weights().clone(),
            synth.bias().clone(),
            screener,
            SelectionPolicy::TopM(config.candidates),
        )
        .map_err(|e| e.to_string())?;
        // Freeze up front so classification can run through shared
        // references (and therefore across threads) later.
        classifier.freeze();
        build_phases.push(host_phase("assemble", sw.lap_ns()));
        Ok(Pipeline {
            synth,
            classifier,
            system: SystemModel::table3(),
            config: config.clone(),
            build_phases,
        })
    }

    /// The synthetic workload.
    pub fn synth(&self) -> &SyntheticClassifier {
        &self.synth
    }

    /// The approximate classifier (screener + full weights).
    pub fn classifier(&self) -> &ApproxClassifier {
        &self.classifier
    }

    /// The configuration this pipeline was built from.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The hardware system model projections run against.
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// Classifies `n` fresh queries approximately and scores them against
    /// the exact classifier (top-1 agreement, precision@10, perplexity).
    pub fn evaluate_quality(&mut self, n: usize) -> QualityReport {
        self.evaluate_quality_with(n, &SimConfig::sequential())
    }

    /// [`Pipeline::evaluate_quality`] with an explicit execution policy.
    ///
    /// The query stream is decomposed into [`QUALITY_SHARDS`] fixed shards
    /// regardless of worker count, each shard accumulated independently and
    /// merged in shard order — so the report is bit-identical for any
    /// number of workers (including sequential).
    pub fn evaluate_quality_with(&mut self, n: usize, cfg: &SimConfig) -> QualityReport {
        let policy = self.classifier.policy();
        self.evaluate_quality_policy_with(n, policy, cfg)
    }

    /// [`Pipeline::evaluate_quality_with`] under an explicit selection
    /// policy, leaving the configured one untouched.
    ///
    /// This is how a serving deployment prices its degrade ladder: one
    /// built pipeline scores every `(K, screening-level)` tier over the
    /// *same* seeded query stream, so tier-to-tier quality deltas are not
    /// confounded by sampling noise. Same determinism guarantee as
    /// [`Pipeline::evaluate_quality_with`].
    pub fn evaluate_quality_policy_with(
        &mut self,
        n: usize,
        policy: SelectionPolicy,
        cfg: &SimConfig,
    ) -> QualityReport {
        let queries = self.synth.sample_queries_seeded(n, self.config.seed ^ 0x5ca1e);
        self.classifier.freeze();
        let synth = &self.synth;
        let classifier = &self.classifier;
        let queries = &queries[..];
        let shards = enmc_par::shard_ranges(queries.len(), QUALITY_SHARDS);
        let accs = enmc_par::par_map(cfg.worker_count(), shards, |_, range| {
            let mut acc = QualityAccumulator::new(10);
            for q in &queries[range] {
                let full = synth.full_logits(&q.hidden);
                let out = classifier.classify_ref_with(&q.hidden, policy);
                acc.add(full.as_slice(), out.logits.as_slice(), q.target);
            }
            acc
        });
        let mut merged = QualityAccumulator::new(10);
        for acc in &accs {
            merged.merge(acc);
        }
        merged.finish()
    }

    /// The hardware-level job this pipeline's shape corresponds to.
    pub fn job(&self, batch: usize) -> ClassificationJob {
        ClassificationJob {
            categories: self.config.categories,
            hidden: self.config.hidden,
            reduced: self.classifier.screener().reduced_dim(),
            batch,
            candidates: self.config.candidates,
        }
    }

    /// Simulates the job on the ENMC architecture (batch 1).
    pub fn simulate_enmc(&self) -> SchemeResult {
        self.system.run(&self.job(1), Scheme::Enmc)
    }

    /// Simulates the job under any scheme.
    pub fn simulate(&self, scheme: Scheme, batch: usize) -> SchemeResult {
        self.system.run(&self.job(batch), scheme)
    }

    /// [`Pipeline::simulate_enmc`] through an explicit cost backend: the
    /// cycle-accurate backend is exactly [`Pipeline::simulate_enmc`]; a
    /// surrogate backend answers in fitted arithmetic, auditing a seeded
    /// fraction of calls cycle-accurately.
    ///
    /// # Errors
    ///
    /// Returns the [`SurrogateViolation`] when an audited prediction
    /// misses the declared bound.
    pub fn simulate_enmc_with_cost(
        &self,
        batch: usize,
        cost: &mut CostModel,
    ) -> Result<SchemeResult, SurrogateViolation> {
        cost.run_enmc(&self.system, &self.job(batch), "pipeline simulate")
    }

    /// Wall-clock timing of the build phases (synthesize / distill /
    /// assemble).
    pub fn build_phases(&self) -> &[PhaseSpan] {
        &self.build_phases
    }

    /// Simulates the job under `scheme` and returns the result together
    /// with a structured [`RunReport`] whose phases include this pipeline's
    /// build phases followed by the simulated phases.
    pub fn run_report(&self, scheme: Scheme, batch: usize) -> (SchemeResult, RunReport) {
        let sw = Stopwatch::start();
        let result = self.simulate(scheme, batch);
        let sim_wall_ns = sw.elapsed_ns();
        let job = self.job(batch);
        let mut report =
            report_from_result("pipeline", "synthetic", &job, &result, sim_wall_ns);
        report.phases.splice(0..0, self.build_phases.iter().cloned());
        (result, report)
    }

    /// Like [`Pipeline::run_report`] but simulating every rank unit in the
    /// system under the execution policy in `cfg` (instead of the
    /// representative-rank shortcut). The simulated result is bit-identical
    /// for any worker count; the report records the worker count and the
    /// observed speedup.
    pub fn run_report_with(
        &self,
        scheme: Scheme,
        batch: usize,
        cfg: &SimConfig,
    ) -> (ShardedRun, RunReport) {
        let job = self.job(batch);
        let run = self.system.run_sharded(&job, scheme, cfg);
        let mut report = report_from_sharded("pipeline", "synthetic", &job, &self.system, &run);
        report.phases.splice(0..0, self.build_phases.iter().cloned());
        (run, report)
    }
}

/// The CLI-facing name of a scheme (matches `enmc simulate --scheme`).
pub fn scheme_label(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::CpuFull => "cpu",
        Scheme::CpuScreened => "cpu-as",
        Scheme::Baseline(BaselineKind::Nda) => "nda",
        Scheme::Baseline(BaselineKind::Chameleon) => "chameleon",
        Scheme::Baseline(BaselineKind::TensorDimm) => "tensordimm",
        Scheme::Baseline(BaselineKind::TensorDimmLarge) => "tensordimm-large",
        Scheme::Enmc => "enmc",
    }
}

/// Builds a [`RunReport`] from one scheme run.
///
/// For simulated schemes the report carries the representative rank's
/// screen / gather / activation phases — their cycle totals sum exactly to
/// the headline `sim_cycles` — plus the full `unit.*` / `dram.*` metrics
/// snapshot. `sim_wall_ns` (host time spent inside the simulator) is
/// apportioned to the simulated phases by their cycle share. Analytic CPU
/// schemes report a single zero-cycle `analytic` phase.
pub fn report_from_result(
    command: &str,
    workload: &str,
    job: &ClassificationJob,
    result: &SchemeResult,
    sim_wall_ns: f64,
) -> RunReport {
    let label = scheme_label(result.scheme);
    let mut report = RunReport::new(command, workload, label);
    report.batch = job.batch as u64;
    report.candidates = job.candidates as u64;
    report.headline_ns = result.ns;
    match &result.rank_report {
        Some(r) => {
            report.sim_cycles = r.dram_cycles;
            report.protocol_violations = r.protocol_violations;
            let ns_per_cycle =
                if r.dram_cycles == 0 { 0.0 } else { r.ns / r.dram_cycles as f64 };
            let phases = [
                ("screen", r.screen_done_cycle),
                ("gather", r.exec_done_cycle - r.screen_done_cycle),
                ("activation", r.dram_cycles - r.exec_done_cycle),
            ];
            for (name, cycles) in phases {
                let share = if r.dram_cycles == 0 {
                    0.0
                } else {
                    cycles as f64 / r.dram_cycles as f64
                };
                report.push_phase(
                    name,
                    sim_wall_ns * share,
                    cycles,
                    cycles as f64 * ns_per_cycle,
                );
            }
            let mut registry = MetricsRegistry::new();
            r.record_into(&mut registry, &[("scheme", label), ("workload", workload)]);
            report.metrics = registry.snapshot();
            report
                .notes
                .push("phases describe one representative rank-unit".to_string());
        }
        None => {
            report.push_phase("analytic", sim_wall_ns, 0, result.ns);
            report.notes.push("analytic CPU model; no cycle-level simulation".to_string());
        }
    }
    report
}

/// Builds the top-down cost attribution for a sharded run: the merged
/// rank report plus the per-shard DRAM statistics, priced with the
/// system's DRAM and logic energy models. `None` for analytic CPU
/// schemes (nothing cycle-level to attribute).
///
/// Every input is bit-identical for any worker count, so the attribution
/// (and everything derived from it — report rows, the `enmc profile`
/// tree) is too.
pub fn attribute_run(sys: &SystemModel, run: &ShardedRun) -> Option<CostAttribution> {
    let merged = run.result.rank_report.as_ref()?;
    let logic = sys.logic_energy_model(run.result.scheme)?;
    Some(enmc_perf::attribute(
        merged,
        &run.shard_dram,
        CHANNELS,
        sys.energy_model(),
        &logic,
    ))
}

/// Builds a [`RunReport`] from a sharded whole-system run.
///
/// Same phase structure as [`report_from_result`], but the rank report is
/// the straggler-merge over every simulated rank unit, and the report
/// additionally records the worker count, the observed parallel speedup
/// (summed shard wall time over region wall time), and — for simulated
/// schemes — the cost-attribution rows from [`attribute_run`], whose
/// leaves sum exactly to `sim_cycles` and `energy_nj`.
pub fn report_from_sharded(
    command: &str,
    workload: &str,
    job: &ClassificationJob,
    sys: &SystemModel,
    run: &ShardedRun,
) -> RunReport {
    let mut report = report_from_result(command, workload, job, &run.result, run.wall_ns);
    report.threads = run.workers as u64;
    report.speedup = run.speedup();
    if run.result.rank_report.is_some() {
        // The representative-rank note does not apply to a sharded run.
        report.notes.retain(|n| !n.contains("representative rank-unit"));
        report.notes.push(format!(
            "sharded run: {} rank shards on {} worker(s), speedup {:.2}x",
            run.shards,
            run.workers,
            run.speedup()
        ));
    }
    if let Some(attr) = attribute_run(sys, run) {
        report.energy_nj = attr.energy_nj();
        report.breakdown = attr.rows();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate_small_pipeline() {
        let mut p = Pipeline::build(&PipelineConfig {
            categories: 1000,
            hidden: 48,
            candidates: 30,
            train_queries: 64,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let q = p.evaluate_quality(40);
        assert!(q.top1_agreement > 0.75, "agreement {}", q.top1_agreement);
        assert!(q.perplexity_ratio() < 1.5, "ppl ratio {}", q.perplexity_ratio());
    }

    #[test]
    fn enmc_simulation_is_faster_than_cpu() {
        let p = Pipeline::build(&PipelineConfig {
            categories: 8192,
            hidden: 128,
            candidates: 128,
            train_queries: 16,
            seed: 4,
            ..Default::default()
        })
        .unwrap();
        let cpu = p.simulate(Scheme::CpuFull, 1);
        let enmc = p.simulate_enmc();
        assert!(enmc.ns < cpu.ns);
    }

    #[test]
    fn run_report_phases_sum_to_headline() {
        let p = Pipeline::build(&PipelineConfig {
            categories: 8192,
            hidden: 128,
            candidates: 128,
            train_queries: 16,
            seed: 4,
            ..Default::default()
        })
        .unwrap();
        let (result, report) = p.run_report(Scheme::Enmc, 1);
        assert!(report.is_consistent(), "phase cycles must sum to the headline");
        assert_eq!(report.sim_cycles, result.rank_report.as_ref().unwrap().dram_cycles);
        // 3 build phases + screen/gather/activation.
        assert_eq!(report.phases.len(), 6);
        assert_eq!(report.scheme, "enmc");
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // Analytic schemes stay consistent with zero simulated cycles.
        let (_, cpu) = p.run_report(Scheme::CpuFull, 1);
        assert!(cpu.is_consistent());
        assert_eq!(cpu.sim_cycles, 0);
        assert_eq!(cpu.scheme, "cpu");
    }

    #[test]
    fn quality_is_bit_identical_across_worker_counts() {
        let cfg = PipelineConfig {
            categories: 1000,
            hidden: 48,
            candidates: 30,
            train_queries: 32,
            seed: 9,
            ..Default::default()
        };
        let mut p = Pipeline::build(&cfg).unwrap();
        let seq = p.evaluate_quality_with(48, &SimConfig::sequential());
        for workers in [2, 4, 8] {
            let par = p.evaluate_quality_with(48, &SimConfig::with_threads(workers));
            assert_eq!(par, seq, "{workers} workers diverged");
        }
    }

    #[test]
    fn tiered_quality_degrades_monotonically_in_candidates() {
        let mut p = Pipeline::build(&PipelineConfig {
            categories: 1000,
            hidden: 48,
            candidates: 40,
            train_queries: 64,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let cfg = SimConfig::sequential();
        let full = p.evaluate_quality_policy_with(48, SelectionPolicy::TopM(40), &cfg);
        let degraded = p.evaluate_quality_policy_with(48, SelectionPolicy::TopM(2), &cfg);
        // The explicit-policy path at the configured K matches the default.
        assert_eq!(full, p.evaluate_quality_with(48, &cfg));
        assert!(degraded.top1_agreement <= full.top1_agreement);
        assert!(degraded.precision_at_k < full.precision_at_k);
        // The configured policy survives the tier sweep.
        assert_eq!(p.classifier().policy(), SelectionPolicy::TopM(40));
    }

    #[test]
    fn sharded_report_records_threads_and_speedup() {
        let p = Pipeline::build(&PipelineConfig {
            categories: 4096,
            hidden: 64,
            candidates: 64,
            train_queries: 16,
            seed: 6,
            ..Default::default()
        })
        .unwrap();
        let (run, report) = p.run_report_with(Scheme::Enmc, 1, &SimConfig::with_threads(2));
        assert!(report.is_consistent(), "phase cycles must sum to the headline");
        assert_eq!(report.threads, 2);
        assert!(report.speedup > 0.0);
        assert!(report.notes.iter().any(|n| n.contains("sharded run")));
        assert!(!report.notes.iter().any(|n| n.contains("representative")));
        // Bit-identical to the sequential sharded run.
        let (seq, seq_report) = p.run_report_with(Scheme::Enmc, 1, &SimConfig::sequential());
        assert_eq!(run.result, seq.result);
        assert_eq!(seq_report.threads, 1);
        // Analytic schemes still produce a consistent report.
        let (_, cpu) = p.run_report_with(Scheme::CpuFull, 1, &SimConfig::with_threads(2));
        assert!(cpu.is_consistent());
        assert_eq!(cpu.sim_cycles, 0);
    }

    #[test]
    fn sharded_report_attribution_leaves_sum_to_totals() {
        let p = Pipeline::build(&PipelineConfig {
            categories: 4096,
            hidden: 64,
            candidates: 64,
            train_queries: 16,
            seed: 6,
            ..Default::default()
        })
        .unwrap();
        let (_, report) = p.run_report_with(Scheme::Enmc, 1, &SimConfig::with_threads(3));
        assert!(!report.breakdown.is_empty());
        let cyc: u64 = report
            .breakdown
            .iter()
            .filter(|r| r.path.starts_with("cycles/"))
            .map(|r| r.cycles)
            .sum();
        assert_eq!(cyc, report.sim_cycles);
        let nj: f64 = report
            .breakdown
            .iter()
            .filter(|r| r.path.starts_with("energy/"))
            .map(|r| r.nj)
            .sum();
        assert_eq!(nj.to_bits(), report.energy_nj.to_bits(), "leaves must sum exactly");
        // Bit-identical attribution regardless of worker count.
        let (_, seq) = p.run_report_with(Scheme::Enmc, 1, &SimConfig::sequential());
        assert_eq!(seq.breakdown, report.breakdown);
        assert_eq!(seq.energy_nj.to_bits(), report.energy_nj.to_bits());
        // Analytic CPU schemes carry no attribution.
        let (_, cpu) = p.run_report_with(Scheme::CpuFull, 1, &SimConfig::with_threads(2));
        assert!(cpu.breakdown.is_empty());
        assert_eq!(cpu.energy_nj, 0.0);
    }

    #[test]
    fn build_phases_are_recorded() {
        let p = Pipeline::build(&PipelineConfig {
            categories: 1000,
            hidden: 48,
            candidates: 30,
            train_queries: 16,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let names: Vec<&str> = p.build_phases().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["synthesize", "distill", "assemble"]);
    }

    #[test]
    fn build_rejects_degenerate_config() {
        let bad = PipelineConfig { categories: 0, ..Default::default() };
        assert!(Pipeline::build(&bad).is_err());
    }
}
