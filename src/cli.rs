//! Command-line argument validation for the `enmc` binary.
//!
//! The parsing itself stays in `main.rs`; this module holds the testable
//! validation rules so bad inputs fail with a message that names the flag,
//! the offending value, and the accepted range — instead of silently
//! falling back to a default.

/// Validates a `--batch` value: must parse as an integer ≥ 1.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_batch(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("--batch must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--batch expects a positive integer, got '{raw}'")),
    }
}

/// Validates a `--candidates` value: a finite fraction in `(0, 1]`.
///
/// Zero is rejected — a run computing no exact candidates degenerates to
/// pure screening, which `--scheme` cannot express; use a small fraction
/// instead.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_candidate_fraction(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(f) if f.is_finite() && f > 0.0 && f <= 1.0 => Ok(f),
        Ok(_) => Err(format!("--candidates must be a fraction in (0, 1], got '{raw}'")),
        Err(_) => Err(format!("--candidates expects a number in (0, 1], got '{raw}'")),
    }
}

/// Validates a `--threads` value: must parse as an integer ≥ 1.
///
/// `--threads 1` still runs the sharded whole-system simulation (on one
/// worker); omitting the flag keeps the representative-rank shortcut
/// unless `ENMC_THREADS` is set.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("--threads must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--threads expects a positive integer, got '{raw}'")),
    }
}

/// Validates a generic positive-count flag (`--seeds`, `--len`, ...):
/// must parse as an integer ≥ 1. `flag` names the flag in the message.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_count(flag: &str, raw: &str) -> Result<u64, String> {
    match raw.parse::<u64>() {
        Ok(0) => Err(format!("{flag} must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} expects a positive integer, got '{raw}'")),
    }
}

/// Validates a `--report` value.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted formats.
pub fn parse_report_format(raw: &str) -> Result<ReportFormat, String> {
    match raw.to_ascii_lowercase().as_str() {
        "text" => Ok(ReportFormat::Text),
        "json" => Ok(ReportFormat::Json),
        _ => Err(format!("--report must be 'text' or 'json', got '{raw}'")),
    }
}

/// Output format of `enmc simulate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable summary (the default).
    Text,
    /// A machine-readable [`enmc_obs::RunReport`] on stdout.
    Json,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accepts_positive_integers() {
        assert_eq!(parse_batch("1"), Ok(1));
        assert_eq!(parse_batch("64"), Ok(64));
    }

    #[test]
    fn batch_rejects_zero_and_junk() {
        assert!(parse_batch("0").unwrap_err().contains(">= 1"));
        assert!(parse_batch("-3").unwrap_err().contains("positive integer"));
        assert!(parse_batch("four").unwrap_err().contains("'four'"));
        assert!(parse_batch("2.5").is_err());
        assert!(parse_batch("").is_err());
    }

    #[test]
    fn fraction_accepts_half_open_unit_interval() {
        assert_eq!(parse_candidate_fraction("0.05"), Ok(0.05));
        assert_eq!(parse_candidate_fraction("1"), Ok(1.0));
        assert_eq!(parse_candidate_fraction("1e-3"), Ok(1e-3));
    }

    #[test]
    fn fraction_rejects_out_of_range_and_junk() {
        assert!(parse_candidate_fraction("0").unwrap_err().contains("(0, 1]"));
        assert!(parse_candidate_fraction("-0.1").is_err());
        assert!(parse_candidate_fraction("1.5").is_err());
        assert!(parse_candidate_fraction("NaN").is_err());
        assert!(parse_candidate_fraction("inf").is_err());
        assert!(parse_candidate_fraction("lots").unwrap_err().contains("'lots'"));
    }

    #[test]
    fn threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
    }

    #[test]
    fn threads_rejects_zero_and_junk() {
        assert!(parse_threads("0").unwrap_err().contains(">= 1"));
        assert!(parse_threads("-2").unwrap_err().contains("positive integer"));
        assert!(parse_threads("many").unwrap_err().contains("'many'"));
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn count_accepts_positive_and_names_the_flag() {
        assert_eq!(parse_count("--seeds", "32"), Ok(32));
        assert_eq!(parse_count("--len", "1"), Ok(1));
        assert!(parse_count("--seeds", "0").unwrap_err().contains("--seeds"));
        assert!(parse_count("--len", "-4").unwrap_err().contains("--len"));
        assert!(parse_count("--seeds", "many").unwrap_err().contains("'many'"));
    }

    #[test]
    fn report_format_parses() {
        assert_eq!(parse_report_format("json"), Ok(ReportFormat::Json));
        assert_eq!(parse_report_format("TEXT"), Ok(ReportFormat::Text));
        assert!(parse_report_format("xml").unwrap_err().contains("'xml'"));
    }
}
