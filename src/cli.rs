//! Command-line argument validation for the `enmc` binary.
//!
//! The parsing itself stays in `main.rs`; this module holds the testable
//! validation rules so bad inputs fail with a message that names the flag,
//! the offending value, and the accepted range — instead of silently
//! falling back to a default.

/// Validates a `--batch` value: must parse as an integer ≥ 1.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_batch(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("--batch must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--batch expects a positive integer, got '{raw}'")),
    }
}

/// Validates a `--candidates` value: a finite fraction in `(0, 1]`.
///
/// Zero is rejected — a run computing no exact candidates degenerates to
/// pure screening, which `--scheme` cannot express; use a small fraction
/// instead.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_candidate_fraction(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(f) if f.is_finite() && f > 0.0 && f <= 1.0 => Ok(f),
        Ok(_) => Err(format!("--candidates must be a fraction in (0, 1], got '{raw}'")),
        Err(_) => Err(format!("--candidates expects a number in (0, 1], got '{raw}'")),
    }
}

/// Validates a `--threads` value: must parse as an integer ≥ 1.
///
/// `--threads 1` still runs the sharded whole-system simulation (on one
/// worker); omitting the flag keeps the representative-rank shortcut
/// unless `ENMC_THREADS` is set.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("--threads must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--threads expects a positive integer, got '{raw}'")),
    }
}

/// Validates a generic positive-count flag (`--seeds`, `--len`, ...):
/// must parse as an integer ≥ 1. `flag` names the flag in the message.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_count(flag: &str, raw: &str) -> Result<u64, String> {
    match raw.parse::<u64>() {
        Ok(0) => Err(format!("{flag} must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} expects a positive integer, got '{raw}'")),
    }
}

/// Validates a `--rate` value: a finite arrival rate > 0, in requests
/// per kilocycle (1000 DRAM cycles).
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_rate(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(r) if r.is_finite() && r > 0.0 => Ok(r),
        Ok(_) => Err(format!("--rate must be a positive requests-per-kilocycle value, got '{raw}'")),
        Err(_) => Err(format!("--rate expects a positive number, got '{raw}'")),
    }
}

/// Validates an `--arrival` value.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted processes.
pub fn parse_arrival_kind(raw: &str) -> Result<ArrivalKind, String> {
    match raw.to_ascii_lowercase().as_str() {
        "poisson" => Ok(ArrivalKind::Poisson),
        "burst" => Ok(ArrivalKind::Burst),
        "diurnal" => Ok(ArrivalKind::Diurnal),
        "trace" => Ok(ArrivalKind::Trace),
        _ => Err(format!(
            "--arrival must be 'poisson', 'burst', 'diurnal' or 'trace', got '{raw}'"
        )),
    }
}

/// Arrival-process families of `enmc serve-sim` (rates and trace paths
/// bind in `main.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless constant-rate arrivals.
    Poisson,
    /// Two-state bursty (MMPP-2) arrivals.
    Burst,
    /// Triangle-wave diurnal ramp.
    Diurnal,
    /// Replay of a timestamp file.
    Trace,
}

/// Validates a `--degrade-tiers` list (comma-separated `K:S` pairs,
/// ordered from full quality downwards); see
/// [`enmc_serve::tier::parse_tiers`] for the grammar.
///
/// # Errors
///
/// Returns the serving crate's flag-naming message unchanged.
pub fn parse_degrade_tiers(raw: &str) -> Result<Vec<enmc_serve::DegradeTier>, String> {
    enmc_serve::parse_tiers(raw)
}

/// Validates a `--report` value.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted formats.
pub fn parse_report_format(raw: &str) -> Result<ReportFormat, String> {
    match raw.to_ascii_lowercase().as_str() {
        "text" => Ok(ReportFormat::Text),
        "json" => Ok(ReportFormat::Json),
        _ => Err(format!("--report must be 'text' or 'json', got '{raw}'")),
    }
}

/// Output format of `enmc simulate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable summary (the default).
    Text,
    /// A machine-readable [`enmc_obs::RunReport`] on stdout.
    Json,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accepts_positive_integers() {
        assert_eq!(parse_batch("1"), Ok(1));
        assert_eq!(parse_batch("64"), Ok(64));
    }

    #[test]
    fn batch_rejects_zero_and_junk() {
        assert!(parse_batch("0").unwrap_err().contains(">= 1"));
        assert!(parse_batch("-3").unwrap_err().contains("positive integer"));
        assert!(parse_batch("four").unwrap_err().contains("'four'"));
        assert!(parse_batch("2.5").is_err());
        assert!(parse_batch("").is_err());
    }

    #[test]
    fn fraction_accepts_half_open_unit_interval() {
        assert_eq!(parse_candidate_fraction("0.05"), Ok(0.05));
        assert_eq!(parse_candidate_fraction("1"), Ok(1.0));
        assert_eq!(parse_candidate_fraction("1e-3"), Ok(1e-3));
    }

    #[test]
    fn fraction_rejects_out_of_range_and_junk() {
        assert!(parse_candidate_fraction("0").unwrap_err().contains("(0, 1]"));
        assert!(parse_candidate_fraction("-0.1").is_err());
        assert!(parse_candidate_fraction("1.5").is_err());
        assert!(parse_candidate_fraction("NaN").is_err());
        assert!(parse_candidate_fraction("inf").is_err());
        assert!(parse_candidate_fraction("lots").unwrap_err().contains("'lots'"));
    }

    #[test]
    fn threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
    }

    #[test]
    fn threads_rejects_zero_and_junk() {
        assert!(parse_threads("0").unwrap_err().contains(">= 1"));
        assert!(parse_threads("-2").unwrap_err().contains("positive integer"));
        assert!(parse_threads("many").unwrap_err().contains("'many'"));
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn count_accepts_positive_and_names_the_flag() {
        assert_eq!(parse_count("--seeds", "32"), Ok(32));
        assert_eq!(parse_count("--len", "1"), Ok(1));
        assert!(parse_count("--seeds", "0").unwrap_err().contains("--seeds"));
        assert!(parse_count("--len", "-4").unwrap_err().contains("--len"));
        assert!(parse_count("--seeds", "many").unwrap_err().contains("'many'"));
    }

    #[test]
    fn report_format_parses() {
        assert_eq!(parse_report_format("json"), Ok(ReportFormat::Json));
        assert_eq!(parse_report_format("TEXT"), Ok(ReportFormat::Text));
        assert!(parse_report_format("xml").unwrap_err().contains("'xml'"));
    }

    #[test]
    fn rate_accepts_positive_finite_numbers() {
        assert_eq!(parse_rate("0.5"), Ok(0.5));
        assert_eq!(parse_rate("12"), Ok(12.0));
        assert!(parse_rate("0").unwrap_err().contains("--rate"));
        assert!(parse_rate("-1").is_err());
        assert!(parse_rate("inf").is_err());
        assert!(parse_rate("fast").unwrap_err().contains("'fast'"));
    }

    #[test]
    fn arrival_kind_parses() {
        assert_eq!(parse_arrival_kind("poisson"), Ok(ArrivalKind::Poisson));
        assert_eq!(parse_arrival_kind("BURST"), Ok(ArrivalKind::Burst));
        assert_eq!(parse_arrival_kind("diurnal"), Ok(ArrivalKind::Diurnal));
        assert_eq!(parse_arrival_kind("trace"), Ok(ArrivalKind::Trace));
        assert!(parse_arrival_kind("uniform").unwrap_err().contains("'uniform'"));
    }

    #[test]
    fn degrade_tiers_delegate_to_the_serving_grammar() {
        let tiers = parse_degrade_tiers("100:0,50:1").unwrap();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[1].candidates, 50);
        assert!(parse_degrade_tiers("50:1,100:0").unwrap_err().contains("--degrade-tiers"));
    }
}
