//! Command-line argument validation for the `enmc` binary.
//!
//! The parsing itself stays in `main.rs`; this module holds the testable
//! validation rules so bad inputs fail with a message that names the flag,
//! the offending value, and the accepted range — instead of silently
//! falling back to a default.

/// Validates a `--batch` value: must parse as an integer ≥ 1.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_batch(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("--batch must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--batch expects a positive integer, got '{raw}'")),
    }
}

/// Validates a `--candidates` value: a finite fraction in `(0, 1]`.
///
/// Zero is rejected — a run computing no exact candidates degenerates to
/// pure screening, which `--scheme` cannot express; use a small fraction
/// instead.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_candidate_fraction(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(f) if f.is_finite() && f > 0.0 && f <= 1.0 => Ok(f),
        Ok(_) => Err(format!("--candidates must be a fraction in (0, 1], got '{raw}'")),
        Err(_) => Err(format!("--candidates expects a number in (0, 1], got '{raw}'")),
    }
}

/// Validates a `--threads` value: must parse as an integer ≥ 1.
///
/// `--threads 1` still runs the sharded whole-system simulation (on one
/// worker); omitting the flag keeps the representative-rank shortcut
/// unless `ENMC_THREADS` is set.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("--threads must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--threads expects a positive integer, got '{raw}'")),
    }
}

/// Validates a generic positive-count flag (`--seeds`, `--len`, ...):
/// must parse as an integer ≥ 1. `flag` names the flag in the message.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_count(flag: &str, raw: &str) -> Result<u64, String> {
    match raw.parse::<u64>() {
        Ok(0) => Err(format!("{flag} must be >= 1, got '{raw}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} expects a positive integer, got '{raw}'")),
    }
}

/// Validates a `--rate` value: a finite arrival rate > 0, in requests
/// per kilocycle (1000 DRAM cycles).
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_rate(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(r) if r.is_finite() && r > 0.0 => Ok(r),
        Ok(_) => Err(format!("--rate must be a positive requests-per-kilocycle value, got '{raw}'")),
        Err(_) => Err(format!("--rate expects a positive number, got '{raw}'")),
    }
}

/// Validates an `--arrival` value.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted processes.
pub fn parse_arrival_kind(raw: &str) -> Result<ArrivalKind, String> {
    match raw.to_ascii_lowercase().as_str() {
        "poisson" => Ok(ArrivalKind::Poisson),
        "burst" => Ok(ArrivalKind::Burst),
        "diurnal" => Ok(ArrivalKind::Diurnal),
        "trace" => Ok(ArrivalKind::Trace),
        _ => Err(format!(
            "--arrival must be 'poisson', 'burst', 'diurnal' or 'trace', got '{raw}'"
        )),
    }
}

/// Arrival-process families of `enmc serve-sim` (rates and trace paths
/// bind in `main.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless constant-rate arrivals.
    Poisson,
    /// Two-state bursty (MMPP-2) arrivals.
    Burst,
    /// Triangle-wave diurnal ramp.
    Diurnal,
    /// Replay of a timestamp file.
    Trace,
}

/// Validates a `--degrade-tiers` list (comma-separated `K:S` pairs,
/// ordered from full quality downwards); see
/// [`enmc_serve::tier::parse_tiers`] for the grammar.
///
/// # Errors
///
/// Returns the serving crate's flag-naming message unchanged.
pub fn parse_degrade_tiers(raw: &str) -> Result<Vec<enmc_serve::DegradeTier>, String> {
    enmc_serve::parse_tiers(raw)
}

/// Validates a `--seed` value: any unsigned 64-bit integer (zero
/// included — a seed is an identifier, not a count). `flag` names the
/// flag in the message so the helper also serves `ENMC_SEED`.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the offending value.
pub fn parse_seed(flag: &str, raw: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("{flag} expects an unsigned integer seed, got '{raw}'"))
}

/// Resolves the effective seed for a subcommand: an explicit `--seed`
/// flag wins, then the `ENMC_SEED` environment hook, else `default`.
///
/// Every seeded subcommand (`simulate`, `serve-sim`, `fault-sweep`)
/// resolves through here so the precedence is uniform and an invalid
/// `ENMC_SEED` fails loudly instead of being silently ignored.
///
/// # Errors
///
/// Returns a user-facing message when the flag or the environment
/// variable is present but not an unsigned integer.
pub fn resolve_seed(flag_raw: Option<&str>, default: u64) -> Result<u64, String> {
    if let Some(raw) = flag_raw {
        return parse_seed("--seed", raw);
    }
    match std::env::var("ENMC_SEED") {
        Ok(raw) => parse_seed("ENMC_SEED", &raw),
        Err(_) => Ok(default),
    }
}

/// Validates a `--ber` value: a finite bit-error probability in `[0, 1]`.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_ber(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(b) if b.is_finite() && (0.0..=1.0).contains(&b) => Ok(b),
        Ok(_) => Err(format!("--ber must be a probability in [0, 1], got '{raw}'")),
        Err(_) => Err(format!("--ber expects a number in [0, 1], got '{raw}'")),
    }
}

/// Validates a `--multipliers` list: comma-separated refresh-interval
/// multipliers, each finite and ≥ 1 (1 = the nominal 64 ms schedule).
///
/// # Errors
///
/// Returns a user-facing message naming the flag, the offending entry,
/// and the accepted range.
pub fn parse_multipliers(raw: &str) -> Result<Vec<f64>, String> {
    if raw.is_empty() {
        return Err("--multipliers expects a comma-separated list, got ''".to_string());
    }
    let mut out = Vec::new();
    for tok in raw.split(',') {
        match tok.parse::<f64>() {
            Ok(m) if m.is_finite() && m >= 1.0 => out.push(m),
            _ => {
                return Err(format!(
                    "--multipliers entries must be numbers >= 1, got '{tok}' in '{raw}'"
                ))
            }
        }
    }
    Ok(out)
}

/// Validates a `--wall-tolerance` value for `bench-diff`: a finite
/// fraction ≥ 0 of allowed wall-clock regression (0.2 = the new median
/// may be up to 20% slower before the gate fails). Deterministic metrics
/// ignore this knob — they are always compared at zero tolerance.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_wall_tolerance(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(t) if t.is_finite() && t >= 0.0 => Ok(t),
        Ok(_) => Err(format!("--wall-tolerance must be a finite fraction >= 0, got '{raw}'")),
        Err(_) => Err(format!("--wall-tolerance expects a number >= 0, got '{raw}'")),
    }
}

/// Validates a `--shape` value for `fault-sweep`.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted shapes.
pub fn parse_shape(raw: &str) -> Result<FaultShape, String> {
    match raw.to_ascii_lowercase().as_str() {
        "lstm-wikitext2" | "lstm" => Ok(FaultShape::LstmWikitext2),
        "transformer-wikitext103" | "transformer" => Ok(FaultShape::TransformerWikitext103),
        "gnmt-wmt16" | "gnmt" => Ok(FaultShape::GnmtWmt16),
        "xmlcnn-amazon670k" | "xmlcnn" => Ok(FaultShape::XmlcnnAmazon670k),
        _ => Err(format!(
            "--shape must be 'lstm-wikitext2', 'transformer-wikitext103', \
             'gnmt-wmt16' or 'xmlcnn-amazon670k' (short forms ok), got '{raw}'"
        )),
    }
}

/// The paper shapes `enmc fault-sweep` evaluates (workload/dataset pairs
/// from Table 2; the resilience glue scales each to its evaluation shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultShape {
    /// LSTM language model on WikiText-2 (33K categories).
    LstmWikitext2,
    /// Transformer language model on WikiText-103 (268K categories).
    TransformerWikitext103,
    /// GNMT encoder-decoder on WMT'16 (32K categories).
    GnmtWmt16,
    /// XML-CNN extreme classifier on Amazon-670K.
    XmlcnnAmazon670k,
}

impl FaultShape {
    /// The canonical long name (what reports record as the workload).
    pub fn name(self) -> &'static str {
        match self {
            FaultShape::LstmWikitext2 => "lstm-wikitext2",
            FaultShape::TransformerWikitext103 => "transformer-wikitext103",
            FaultShape::GnmtWmt16 => "gnmt-wmt16",
            FaultShape::XmlcnnAmazon670k => "xmlcnn-amazon670k",
        }
    }
}

/// Validates a `--memory` value: one of the canonical preset names from
/// [`enmc_mem::MemTech`]. Case-insensitive; `help` is rejected here with
/// a pointer at `enmc list-memory` so the table stays in one place.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted presets.
pub fn parse_memory(raw: &str) -> Result<enmc_mem::MemTech, String> {
    enmc_mem::MemTech::parse(&raw.to_ascii_lowercase()).ok_or_else(|| {
        format!(
            "--memory must be one of {} (see 'enmc list-memory'), got '{raw}'",
            memory_names().join(", ")
        )
    })
}

/// Validates a `--memory` comma-list for `tune`: each entry a canonical
/// preset name; duplicates are allowed (the tune space normalizes).
///
/// # Errors
///
/// Returns a user-facing message naming the offending entry and listing
/// the accepted presets.
pub fn parse_memory_levels(raw: &str) -> Result<Vec<enmc_mem::MemTech>, String> {
    if raw.is_empty() {
        return Err("--memory expects a comma-separated list of presets, got ''".to_string());
    }
    let mut out = Vec::new();
    for tok in raw.split(',') {
        match enmc_mem::MemTech::parse(&tok.to_ascii_lowercase()) {
            Some(t) => out.push(t),
            None => {
                return Err(format!(
                    "--memory entries must be one of {}, got '{tok}' in '{raw}'",
                    memory_names().join(", ")
                ))
            }
        }
    }
    Ok(out)
}

/// The canonical preset names, in declaration order (baseline first).
fn memory_names() -> Vec<&'static str> {
    enmc_mem::MemTech::ALL.iter().map(|t| t.name()).collect()
}

/// Validates a `--cost-model` value.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted backends.
pub fn parse_cost_model(raw: &str) -> Result<CostModelKind, String> {
    match raw.to_ascii_lowercase().as_str() {
        "cycle-accurate" | "cycle" | "accurate" => Ok(CostModelKind::CycleAccurate),
        "surrogate" => Ok(CostModelKind::Surrogate),
        _ => Err(format!("--cost-model must be 'cycle-accurate' or 'surrogate', got '{raw}'")),
    }
}

/// Cost backends selectable with `--cost-model` (the audit rate binds
/// separately via `--audit-rate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModelKind {
    /// Simulate every sweep point cycle-accurately (the default).
    CycleAccurate,
    /// Answer sweep points with the fitted surrogate, auditing a seeded
    /// fraction cycle-accurately.
    Surrogate,
}

/// Validates an `--audit-rate` value: a finite fraction in `[0, 1]` of
/// surrogate predictions to re-run cycle-accurately.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_audit_rate(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => Ok(r),
        Ok(_) => Err(format!("--audit-rate must be a fraction in [0, 1], got '{raw}'")),
        Err(_) => Err(format!("--audit-rate expects a number in [0, 1], got '{raw}'")),
    }
}

/// Validates a comma-separated design-axis level list for `tune`
/// (`--ranks`, `--lanes`, `--screen-bits`, `--candidates`,
/// `--batch-max`): each level must parse as an integer ≥ 1. `flag`
/// names the flag in the message.
///
/// # Errors
///
/// Returns a user-facing message naming the flag, the offending entry,
/// and the accepted range.
pub fn parse_axis_levels(flag: &str, raw: &str) -> Result<Vec<u64>, String> {
    if raw.is_empty() {
        return Err(format!("{flag} expects a comma-separated list of levels, got ''"));
    }
    let mut out = Vec::new();
    for tok in raw.split(',') {
        match tok.parse::<u64>() {
            Ok(n) if n >= 1 => out.push(n),
            _ => {
                return Err(format!(
                    "{flag} levels must be integers >= 1, got '{tok}' in '{raw}'"
                ))
            }
        }
    }
    Ok(out)
}

/// Validates a comma-separated non-negative level list for `tune`
/// (`--screen-shift`, `--linger`): zero is a meaningful level (no shift,
/// no linger), so only the integer parse can fail.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the offending entry.
pub fn parse_axis_counts(flag: &str, raw: &str) -> Result<Vec<u64>, String> {
    if raw.is_empty() {
        return Err(format!("{flag} expects a comma-separated list of levels, got ''"));
    }
    let mut out = Vec::new();
    for tok in raw.split(',') {
        match tok.parse::<u64>() {
            Ok(n) => out.push(n),
            Err(_) => {
                return Err(format!(
                    "{flag} levels must be unsigned integers, got '{tok}' in '{raw}'"
                ))
            }
        }
    }
    Ok(out)
}

/// Validates the `--ecc` axis list for `tune`: comma-separated
/// `on`/`off` (or `true`/`false`, `1`/`0`) levels.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the offending entry.
pub fn parse_ecc_levels(raw: &str) -> Result<Vec<bool>, String> {
    if raw.is_empty() {
        return Err("--ecc expects a comma-separated list of on/off levels, got ''".to_string());
    }
    let mut out = Vec::new();
    for tok in raw.split(',') {
        match tok.to_ascii_lowercase().as_str() {
            "on" | "true" | "1" => out.push(true),
            "off" | "false" | "0" => out.push(false),
            _ => {
                return Err(format!(
                    "--ecc levels must be 'on' or 'off', got '{tok}' in '{raw}'"
                ))
            }
        }
    }
    Ok(out)
}

/// Validates a tuning budget cap (`--max-area-mm2`, `--max-power-mw`):
/// a finite positive number. `flag` names the flag in the message.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted range.
pub fn parse_budget_cap(flag: &str, raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(c) if c.is_finite() && c > 0.0 => Ok(c),
        Ok(_) => Err(format!("{flag} must be a positive finite number, got '{raw}'")),
        Err(_) => Err(format!("{flag} expects a positive number, got '{raw}'")),
    }
}

/// Validates a `--search` value for `tune`.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted strategies.
pub fn parse_search_mode(raw: &str) -> Result<enmc_tune::SearchMode, String> {
    match raw.to_ascii_lowercase().as_str() {
        "exhaustive" | "brute" | "brute-force" => Ok(enmc_tune::SearchMode::Exhaustive),
        "guided" => Ok(enmc_tune::SearchMode::Guided),
        _ => Err(format!("--search must be 'exhaustive' or 'guided', got '{raw}'")),
    }
}

/// Validates a `--placement` value for `fleet-sim`.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted policies.
pub fn parse_placement(raw: &str) -> Result<enmc_fleet::PlacementPolicy, String> {
    match raw.to_ascii_lowercase().as_str() {
        "consistent-hash" | "hash" | "ch" => Ok(enmc_fleet::PlacementPolicy::ConsistentHash),
        "popularity" | "popularity-aware" | "pa" => {
            Ok(enmc_fleet::PlacementPolicy::PopularityAware)
        }
        _ => Err(format!(
            "--placement must be 'consistent-hash' or 'popularity' (short forms ok), got '{raw}'"
        )),
    }
}

/// Validates a `--zipf` value for `fleet-sim`: a finite skew exponent
/// ≥ 0 in multiples of 0.5 — the restriction that lets the popularity
/// weights be computed exactly (integer powers and IEEE square roots,
/// no platform `powf`), keeping fleet reports bit-identical everywhere.
///
/// # Errors
///
/// Returns a user-facing message naming the flag and the accepted grid.
pub fn parse_zipf(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(s) if s.is_finite() && s >= 0.0 && (s * 2.0).fract() == 0.0 => Ok(s),
        Ok(_) => Err(format!(
            "--zipf must be a skew >= 0 in multiples of 0.5 (0, 0.5, 1, 1.5, ...), got '{raw}'"
        )),
        Err(_) => Err(format!("--zipf expects a number in multiples of 0.5, got '{raw}'")),
    }
}

/// Validates a `--report` value.
///
/// # Errors
///
/// Returns a user-facing message listing the accepted formats.
pub fn parse_report_format(raw: &str) -> Result<ReportFormat, String> {
    match raw.to_ascii_lowercase().as_str() {
        "text" => Ok(ReportFormat::Text),
        "json" => Ok(ReportFormat::Json),
        _ => Err(format!("--report must be 'text' or 'json', got '{raw}'")),
    }
}

/// Output format of `enmc simulate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable summary (the default).
    Text,
    /// A machine-readable [`enmc_obs::RunReport`] on stdout.
    Json,
}

/// One flag's raw value from an argument list: the token following
/// `name`, if any.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// The flag bundle every seeded subcommand shares: `--seed`,
/// `--threads`, `--cost-model`, `--audit-rate`, and `--report`, parsed
/// once with one precedence rule each. `simulate`, `serve-sim`,
/// `fault-sweep`, `fleet-sim`, `tune`, and `offload-plan` all resolve
/// through here, so the flags mean the same thing everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Effective seed: `--seed` > `ENMC_SEED` > the subcommand default.
    pub seed: u64,
    /// Explicit `--threads`, if given. Use [`CommonArgs::threads_or_env`]
    /// or [`CommonArgs::workers`] where `ENMC_THREADS` should apply.
    pub threads: Option<usize>,
    /// Explicit `--cost-model`, if given (`None` lets each subcommand
    /// keep its own default backend).
    pub cost_model: Option<CostModelKind>,
    /// Surrogate audit rate (defaults to 0.1 when the flag is absent).
    pub audit_rate: f64,
    /// Output format (defaults to text).
    pub format: ReportFormat,
    /// Memory-technology preset levels (`--memory`, comma-separated;
    /// defaults to the DDR4 baseline, which reproduces the pre-preset
    /// behavior bit-exactly). Single-preset subcommands resolve through
    /// [`CommonArgs::single_memory`]; `tune` consumes the whole list as
    /// its memory design axis.
    pub memory: Vec<enmc_mem::MemTech>,
}

impl CommonArgs {
    /// Parses the shared flags out of a subcommand's argument list.
    ///
    /// # Errors
    ///
    /// Returns the first failing flag's user-facing message.
    pub fn parse(args: &[String], default_seed: u64) -> Result<Self, String> {
        let seed = resolve_seed(flag_value(args, "--seed"), default_seed)?;
        let threads = flag_value(args, "--threads").map(parse_threads).transpose()?;
        let cost_model = flag_value(args, "--cost-model").map(parse_cost_model).transpose()?;
        let audit_rate =
            flag_value(args, "--audit-rate").map(parse_audit_rate).unwrap_or(Ok(0.1))?;
        let format =
            flag_value(args, "--report").map(parse_report_format).unwrap_or(Ok(ReportFormat::Text))?;
        let memory = flag_value(args, "--memory")
            .map(parse_memory_levels)
            .unwrap_or(Ok(vec![enmc_mem::MemTech::Ddr4_2666]))?;
        Ok(CommonArgs { seed, threads, cost_model, audit_rate, format, memory })
    }

    /// The single `--memory` preset for subcommands that simulate one
    /// technology per run (everything except `tune`, where the list is a
    /// design axis).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when a comma list was given.
    pub fn single_memory(&self) -> Result<enmc_mem::MemTech, String> {
        match self.memory.as_slice() {
            [one] => Ok(*one),
            _ => Err(
                "--memory takes exactly one preset here; comma lists are a 'tune' design axis"
                    .to_string(),
            ),
        }
    }

    /// Worker-count resolution for subcommands where omitting the flag
    /// falls through to the `ENMC_THREADS` hook: flag > env > `None`.
    pub fn threads_or_env(&self) -> Option<usize> {
        self.threads.or_else(enmc_par::env_threads)
    }

    /// Worker count for always-parallel fan-outs: flag > env > 1.
    pub fn workers(&self) -> usize {
        self.threads_or_env().unwrap_or(1)
    }

    /// The cost backend the `--cost-model`/`--audit-rate` pair selects;
    /// `default` is the kind used when the flag is absent
    /// (cycle-accurate for the simulators, surrogate for `tune`).
    pub fn backend(&self, default: CostModelKind) -> enmc_surrogate::CostBackend {
        match self.cost_model.unwrap_or(default) {
            CostModelKind::CycleAccurate => enmc_surrogate::CostBackend::CycleAccurate,
            CostModelKind::Surrogate => {
                enmc_surrogate::CostBackend::Surrogate { audit_rate: self.audit_rate }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accepts_positive_integers() {
        assert_eq!(parse_batch("1"), Ok(1));
        assert_eq!(parse_batch("64"), Ok(64));
    }

    #[test]
    fn batch_rejects_zero_and_junk() {
        assert!(parse_batch("0").unwrap_err().contains(">= 1"));
        assert!(parse_batch("-3").unwrap_err().contains("positive integer"));
        assert!(parse_batch("four").unwrap_err().contains("'four'"));
        assert!(parse_batch("2.5").is_err());
        assert!(parse_batch("").is_err());
    }

    #[test]
    fn fraction_accepts_half_open_unit_interval() {
        assert_eq!(parse_candidate_fraction("0.05"), Ok(0.05));
        assert_eq!(parse_candidate_fraction("1"), Ok(1.0));
        assert_eq!(parse_candidate_fraction("1e-3"), Ok(1e-3));
    }

    #[test]
    fn fraction_rejects_out_of_range_and_junk() {
        assert!(parse_candidate_fraction("0").unwrap_err().contains("(0, 1]"));
        assert!(parse_candidate_fraction("-0.1").is_err());
        assert!(parse_candidate_fraction("1.5").is_err());
        assert!(parse_candidate_fraction("NaN").is_err());
        assert!(parse_candidate_fraction("inf").is_err());
        assert!(parse_candidate_fraction("lots").unwrap_err().contains("'lots'"));
    }

    #[test]
    fn threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
    }

    #[test]
    fn threads_rejects_zero_and_junk() {
        assert!(parse_threads("0").unwrap_err().contains(">= 1"));
        assert!(parse_threads("-2").unwrap_err().contains("positive integer"));
        assert!(parse_threads("many").unwrap_err().contains("'many'"));
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn count_accepts_positive_and_names_the_flag() {
        assert_eq!(parse_count("--seeds", "32"), Ok(32));
        assert_eq!(parse_count("--len", "1"), Ok(1));
        assert!(parse_count("--seeds", "0").unwrap_err().contains("--seeds"));
        assert!(parse_count("--len", "-4").unwrap_err().contains("--len"));
        assert!(parse_count("--seeds", "many").unwrap_err().contains("'many'"));
    }

    #[test]
    fn report_format_parses() {
        assert_eq!(parse_report_format("json"), Ok(ReportFormat::Json));
        assert_eq!(parse_report_format("TEXT"), Ok(ReportFormat::Text));
        assert!(parse_report_format("xml").unwrap_err().contains("'xml'"));
    }

    #[test]
    fn rate_accepts_positive_finite_numbers() {
        assert_eq!(parse_rate("0.5"), Ok(0.5));
        assert_eq!(parse_rate("12"), Ok(12.0));
        assert!(parse_rate("0").unwrap_err().contains("--rate"));
        assert!(parse_rate("-1").is_err());
        assert!(parse_rate("inf").is_err());
        assert!(parse_rate("fast").unwrap_err().contains("'fast'"));
    }

    #[test]
    fn arrival_kind_parses() {
        assert_eq!(parse_arrival_kind("poisson"), Ok(ArrivalKind::Poisson));
        assert_eq!(parse_arrival_kind("BURST"), Ok(ArrivalKind::Burst));
        assert_eq!(parse_arrival_kind("diurnal"), Ok(ArrivalKind::Diurnal));
        assert_eq!(parse_arrival_kind("trace"), Ok(ArrivalKind::Trace));
        assert!(parse_arrival_kind("uniform").unwrap_err().contains("'uniform'"));
    }

    #[test]
    fn seed_accepts_any_u64_including_zero() {
        assert_eq!(parse_seed("--seed", "0"), Ok(0));
        assert_eq!(parse_seed("--seed", "7"), Ok(7));
        assert_eq!(parse_seed("--seed", "18446744073709551615"), Ok(u64::MAX));
        assert!(parse_seed("--seed", "-1").unwrap_err().contains("--seed"));
        assert!(parse_seed("ENMC_SEED", "lucky").unwrap_err().contains("ENMC_SEED"));
        assert!(parse_seed("--seed", "3.5").unwrap_err().contains("'3.5'"));
    }

    #[test]
    fn resolve_seed_prefers_the_flag_and_falls_back_to_the_default() {
        // ENMC_SEED is process-global, so this test only exercises the
        // flag and default arms; the env arm shares parse_seed above.
        if std::env::var("ENMC_SEED").is_err() {
            assert_eq!(resolve_seed(None, 7), Ok(7));
        }
        assert_eq!(resolve_seed(Some("0"), 7), Ok(0));
        assert_eq!(resolve_seed(Some("42"), 7), Ok(42));
        assert!(resolve_seed(Some("nope"), 7).unwrap_err().contains("'nope'"));
    }

    #[test]
    fn ber_accepts_the_closed_unit_interval() {
        assert_eq!(parse_ber("0"), Ok(0.0));
        assert_eq!(parse_ber("1"), Ok(1.0));
        assert_eq!(parse_ber("1e-4"), Ok(1e-4));
        assert!(parse_ber("1.5").unwrap_err().contains("[0, 1]"));
        assert!(parse_ber("-0.1").is_err());
        assert!(parse_ber("NaN").is_err());
        assert!(parse_ber("noisy").unwrap_err().contains("'noisy'"));
    }

    #[test]
    fn multipliers_accept_a_nonempty_list_of_at_least_one() {
        assert_eq!(parse_multipliers("1"), Ok(vec![1.0]));
        assert_eq!(parse_multipliers("1,2,4.5,32"), Ok(vec![1.0, 2.0, 4.5, 32.0]));
        assert!(parse_multipliers("").unwrap_err().contains("--multipliers"));
        assert!(parse_multipliers("0.5").unwrap_err().contains(">= 1"));
        assert!(parse_multipliers("2,zero").unwrap_err().contains("'zero'"));
        assert!(parse_multipliers("2,,4").is_err());
        assert!(parse_multipliers("inf").is_err());
    }

    #[test]
    fn wall_tolerance_accepts_nonnegative_fractions() {
        assert_eq!(parse_wall_tolerance("0"), Ok(0.0));
        assert_eq!(parse_wall_tolerance("0.2"), Ok(0.2));
        assert_eq!(parse_wall_tolerance("1.5"), Ok(1.5));
        assert!(parse_wall_tolerance("-0.1").unwrap_err().contains(">= 0"));
        assert!(parse_wall_tolerance("inf").is_err());
        assert!(parse_wall_tolerance("NaN").is_err());
        assert!(parse_wall_tolerance("loose").unwrap_err().contains("'loose'"));
    }

    #[test]
    fn shape_parses_long_and_short_forms() {
        assert_eq!(parse_shape("lstm-wikitext2"), Ok(FaultShape::LstmWikitext2));
        assert_eq!(parse_shape("LSTM"), Ok(FaultShape::LstmWikitext2));
        assert_eq!(parse_shape("transformer"), Ok(FaultShape::TransformerWikitext103));
        assert_eq!(parse_shape("gnmt-wmt16"), Ok(FaultShape::GnmtWmt16));
        assert_eq!(parse_shape("xmlcnn"), Ok(FaultShape::XmlcnnAmazon670k));
        assert_eq!(parse_shape("xmlcnn").unwrap().name(), "xmlcnn-amazon670k");
        assert!(parse_shape("resnet").unwrap_err().contains("'resnet'"));
    }

    #[test]
    fn memory_parses_every_preset_case_insensitively() {
        use enmc_mem::MemTech;
        assert_eq!(parse_memory("ddr4-2666"), Ok(MemTech::Ddr4_2666));
        assert_eq!(parse_memory("DDR5-4800"), Ok(MemTech::Ddr5_4800));
        assert_eq!(parse_memory("lpddr4-3200"), Ok(MemTech::Lpddr4_3200));
        assert_eq!(parse_memory("HBM2"), Ok(MemTech::Hbm2));
        let err = parse_memory("ddr3").unwrap_err();
        assert!(err.contains("'ddr3'") && err.contains("list-memory"), "{err}");
        assert!(parse_memory("help").is_err(), "the table lives in 'enmc list-memory'");
    }

    #[test]
    fn memory_levels_accept_lists_and_name_the_offender() {
        use enmc_mem::MemTech;
        assert_eq!(
            parse_memory_levels("ddr4-2666,hbm2"),
            Ok(vec![MemTech::Ddr4_2666, MemTech::Hbm2])
        );
        assert_eq!(parse_memory_levels("ddr5-4800"), Ok(vec![MemTech::Ddr5_4800]));
        assert!(parse_memory_levels("").unwrap_err().contains("--memory"));
        assert!(parse_memory_levels("ddr4-2666,gddr6").unwrap_err().contains("'gddr6'"));
    }

    #[test]
    fn common_args_default_to_the_ddr4_baseline_memory() {
        use enmc_mem::MemTech;
        let c = CommonArgs::parse(&argv(&[]), 7).unwrap();
        assert_eq!(c.memory, vec![MemTech::Ddr4_2666]);
        assert_eq!(c.single_memory(), Ok(MemTech::Ddr4_2666));
        let c = CommonArgs::parse(&argv(&["--memory", "hbm2"]), 7).unwrap();
        assert_eq!(c.single_memory(), Ok(MemTech::Hbm2));
        assert!(CommonArgs::parse(&argv(&["--memory", "sram"]), 7)
            .unwrap_err()
            .contains("'sram'"));
    }

    #[test]
    fn common_args_memory_lists_are_a_tune_axis_only() {
        use enmc_mem::MemTech;
        let c = CommonArgs::parse(&argv(&["--memory", "ddr5-4800,hbm2"]), 7).unwrap();
        assert_eq!(c.memory, vec![MemTech::Ddr5_4800, MemTech::Hbm2]);
        assert!(c.single_memory().unwrap_err().contains("tune"));
    }

    #[test]
    fn cost_model_parses_both_backends_and_short_forms() {
        assert_eq!(parse_cost_model("cycle-accurate"), Ok(CostModelKind::CycleAccurate));
        assert_eq!(parse_cost_model("CYCLE"), Ok(CostModelKind::CycleAccurate));
        assert_eq!(parse_cost_model("surrogate"), Ok(CostModelKind::Surrogate));
        assert!(parse_cost_model("oracle").unwrap_err().contains("'oracle'"));
        assert!(parse_cost_model("").unwrap_err().contains("--cost-model"));
    }

    #[test]
    fn audit_rate_accepts_the_closed_unit_interval() {
        assert_eq!(parse_audit_rate("0"), Ok(0.0));
        assert_eq!(parse_audit_rate("0.1"), Ok(0.1));
        assert_eq!(parse_audit_rate("1"), Ok(1.0));
        assert!(parse_audit_rate("1.5").unwrap_err().contains("[0, 1]"));
        assert!(parse_audit_rate("-0.1").is_err());
        assert!(parse_audit_rate("NaN").is_err());
        assert!(parse_audit_rate("always").unwrap_err().contains("'always'"));
    }

    #[test]
    fn placement_parses_both_policies_and_short_forms() {
        use enmc_fleet::PlacementPolicy;
        assert_eq!(parse_placement("consistent-hash"), Ok(PlacementPolicy::ConsistentHash));
        assert_eq!(parse_placement("CH"), Ok(PlacementPolicy::ConsistentHash));
        assert_eq!(parse_placement("popularity"), Ok(PlacementPolicy::PopularityAware));
        assert_eq!(parse_placement("popularity-aware"), Ok(PlacementPolicy::PopularityAware));
        assert!(parse_placement("random").unwrap_err().contains("'random'"));
    }

    #[test]
    fn zipf_accepts_only_the_half_step_grid() {
        assert_eq!(parse_zipf("0"), Ok(0.0));
        assert_eq!(parse_zipf("0.5"), Ok(0.5));
        assert_eq!(parse_zipf("1"), Ok(1.0));
        assert_eq!(parse_zipf("1.5"), Ok(1.5));
        assert!(parse_zipf("0.7").unwrap_err().contains("multiples of 0.5"));
        assert!(parse_zipf("-1").is_err());
        assert!(parse_zipf("inf").is_err());
        assert!(parse_zipf("hot").unwrap_err().contains("'hot'"));
    }

    #[test]
    fn degrade_tiers_delegate_to_the_serving_grammar() {
        let tiers = parse_degrade_tiers("100:0,50:1").unwrap();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[1].candidates, 50);
        assert!(parse_degrade_tiers("50:1,100:0").unwrap_err().contains("--degrade-tiers"));
    }

    #[test]
    fn axis_levels_accept_positive_lists_and_name_the_flag() {
        assert_eq!(parse_axis_levels("--ranks", "32,64"), Ok(vec![32, 64]));
        assert_eq!(parse_axis_levels("--lanes", "128"), Ok(vec![128]));
        assert!(parse_axis_levels("--ranks", "").unwrap_err().contains("--ranks"));
        assert!(parse_axis_levels("--lanes", "64,0").unwrap_err().contains(">= 1"));
        assert!(parse_axis_levels("--ranks", "32,many").unwrap_err().contains("'many'"));
    }

    #[test]
    fn axis_counts_accept_zero_levels() {
        assert_eq!(parse_axis_counts("--screen-shift", "0,1,2"), Ok(vec![0, 1, 2]));
        assert_eq!(parse_axis_counts("--linger", "0"), Ok(vec![0]));
        assert!(parse_axis_counts("--linger", "").unwrap_err().contains("--linger"));
        assert!(parse_axis_counts("--screen-shift", "0,-1").unwrap_err().contains("'-1'"));
    }

    #[test]
    fn ecc_levels_parse_on_off_synonyms() {
        assert_eq!(parse_ecc_levels("off,on"), Ok(vec![false, true]));
        assert_eq!(parse_ecc_levels("TRUE"), Ok(vec![true]));
        assert_eq!(parse_ecc_levels("0"), Ok(vec![false]));
        assert!(parse_ecc_levels("").unwrap_err().contains("--ecc"));
        assert!(parse_ecc_levels("on,maybe").unwrap_err().contains("'maybe'"));
    }

    #[test]
    fn budget_caps_must_be_positive_and_finite() {
        assert_eq!(parse_budget_cap("--max-area-mm2", "120.5"), Ok(120.5));
        assert!(parse_budget_cap("--max-area-mm2", "0").unwrap_err().contains("--max-area-mm2"));
        assert!(parse_budget_cap("--max-power-mw", "-3").unwrap_err().contains("positive"));
        assert!(parse_budget_cap("--max-power-mw", "inf").is_err());
        assert!(parse_budget_cap("--max-area-mm2", "big").unwrap_err().contains("'big'"));
    }

    #[test]
    fn search_mode_parses_both_strategies() {
        use enmc_tune::SearchMode;
        assert_eq!(parse_search_mode("exhaustive"), Ok(SearchMode::Exhaustive));
        assert_eq!(parse_search_mode("BRUTE-FORCE"), Ok(SearchMode::Exhaustive));
        assert_eq!(parse_search_mode("guided"), Ok(SearchMode::Guided));
        assert!(parse_search_mode("random").unwrap_err().contains("'random'"));
    }

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn common_args_default_when_no_flags_are_given() {
        // ENMC_SEED/ENMC_THREADS are process-global; only assert the
        // env-free arms when the hooks are unset.
        let c = CommonArgs::parse(&argv(&[]), 7).unwrap();
        if std::env::var("ENMC_SEED").is_err() {
            assert_eq!(c.seed, 7);
        }
        assert_eq!(c.threads, None);
        assert_eq!(c.cost_model, None);
        assert_eq!(c.audit_rate, 0.1);
        assert_eq!(c.format, ReportFormat::Text);
        if std::env::var("ENMC_THREADS").is_err() {
            assert_eq!(c.threads_or_env(), None);
            assert_eq!(c.workers(), 1);
        }
    }

    #[test]
    fn common_args_parse_every_shared_flag() {
        let c = CommonArgs::parse(
            &argv(&[
                "--seed",
                "42",
                "--threads",
                "4",
                "--cost-model",
                "surrogate",
                "--audit-rate",
                "0.5",
                "--report",
                "json",
            ]),
            7,
        )
        .unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.threads, Some(4));
        assert_eq!(c.workers(), 4);
        assert_eq!(c.format, ReportFormat::Json);
        assert_eq!(
            c.backend(CostModelKind::CycleAccurate),
            enmc_surrogate::CostBackend::Surrogate { audit_rate: 0.5 }
        );
    }

    #[test]
    fn common_args_backend_default_binds_per_subcommand() {
        use enmc_surrogate::CostBackend;
        let c = CommonArgs::parse(&argv(&[]), 7).unwrap();
        assert_eq!(c.backend(CostModelKind::CycleAccurate), CostBackend::CycleAccurate);
        assert_eq!(
            c.backend(CostModelKind::Surrogate),
            CostBackend::Surrogate { audit_rate: 0.1 }
        );
    }

    #[test]
    fn common_args_surface_the_failing_flag() {
        assert!(CommonArgs::parse(&argv(&["--threads", "0"]), 7)
            .unwrap_err()
            .contains("--threads"));
        assert!(CommonArgs::parse(&argv(&["--cost-model", "oracle"]), 7)
            .unwrap_err()
            .contains("'oracle'"));
        assert!(CommonArgs::parse(&argv(&["--audit-rate", "2"]), 7)
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(CommonArgs::parse(&argv(&["--report", "xml"]), 7)
            .unwrap_err()
            .contains("'xml'"));
    }

    #[test]
    fn flag_value_returns_the_following_token() {
        let args = argv(&["--seed", "9", "--json"]);
        assert_eq!(flag_value(&args, "--seed"), Some("9"));
        assert_eq!(flag_value(&args, "--json"), None, "trailing flag has no value");
        assert_eq!(flag_value(&args, "--missing"), None);
    }
}
