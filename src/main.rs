//! `enmc` — command-line front door to the reproduction.
//!
//! ```text
//! enmc demo                          quickstart pipeline + projections
//! enmc simulate [options]            simulate one classification job
//!     --workload <abbr>              lstm|transformer|gnmt|xmlcnn|s1m|s10m|s100m
//!     --scheme <name>                cpu|cpu-as|nda|chameleon|tensordimm|enmc
//!     --batch <n>                    batch size (default 1)
//!     --candidates <fraction>        exact fraction in (0, 1] (default 0.05)
//!     --threads <n>                  simulate every rank unit on n workers
//!                                    (default: representative-rank shortcut,
//!                                    or ENMC_THREADS when set)
//!     --trace-out <file>             write a Chrome/Perfetto trace JSON
//!     --report <text|json>           output format (default text)
//!     --seed <n>                     recorded in the report (simulate itself
//!                                    is deterministic; flag > ENMC_SEED > 7)
//!     --memory <preset>              memory technology preset (default
//!                                    ddr4-2666; see `enmc list-memory`)
//!     --check-protocol               shadow every DRAM command with the
//!                                    preset's conformance checker; nonzero
//!                                    exit on any timing violation
//! enmc fuzz-dram [options]           fuzz the controller vs the checker
//!                                    and golden reference model
//!     --seeds <n>                    seeds per pattern (default 32)
//!     --len <n>                      requests per fuzz case (default 96)
//!     --pattern <name>               one traffic shape (default: all, plus
//!                                    the compiler-lowered program)
//!     --inject-bug <name>            plant a controller timing bug; exit 0
//!                                    iff the harness catches it
//!     --memory <preset>              fuzz that preset's timing domain
//!     --repro-out <file>             write the shrunk reproducer JSON
//! enmc serve-sim [options]           simulate online serving of a workload
//!     --workload <abbr>              lstm|transformer|gnmt|xmlcnn|s1m|s10m|s100m
//!     --arrival <kind>               poisson|burst|diurnal|trace (default poisson)
//!     --rate <r>                     offered load, requests per kilocycle
//!     --requests <n>                 requests to generate (default 256)
//!     --slo-cycles <n>               per-request deadline in cycles
//!     --batch-max <n>                dynamic batcher size cap (default 4)
//!     --linger <n>                   max cycles a request may wait unbatched
//!     --lanes <n>                    parallel service lanes (default 2)
//!     --degrade-tiers <K:S,...>      screener degrade ladder, full quality
//!                                    first (default: K, K/2:1, K/4:2)
//!     --shed-queue <n>               shed arrivals beyond this queue depth
//!     --degrade-queue <n>            step a tier down beyond this depth
//!     --upgrade-queue <n>            step a tier up at or below this depth
//!     --seed <n>                     arrival-stream seed (flag > ENMC_SEED > 7)
//!     --candidates <fraction>        tier-0 exact fraction (default 0.05)
//!     --trace-file <file>            arrival timestamps for --arrival trace
//!     --quality <n>                  score each tier over n queries
//!     --offload                      install the per-query offload plan: each
//!                                    (tier, batch) admission point runs on the
//!                                    cheaper of NMP and the CPU roofline
//!     --memory <preset>              memory technology preset, as simulate
//!     --threads / --check-protocol / --trace-out / --report as simulate
//! enmc fleet-sim [options]           simulate a multi-tenant serving fleet
//!     --shape <abbr>                 lstm|transformer|gnmt|xmlcnn|s1m|s10m|s100m
//!     --nodes <n>                    simulated DIMM-group nodes (default 4)
//!     --shards <n>                   classifier shards (default: one per node)
//!     --tenants <n>                  contending tenants (default 2; tenant i
//!                                    gets slo*(i+1) and a smaller shed queue
//!                                    the lower its priority)
//!     --placement <name>             consistent-hash|popularity (default popularity)
//!     --replicas <n>                 extra hot-shard copies (default 2; 0 ok)
//!     --zipf <s>                     shard popularity skew, multiples of 0.5
//!                                    (default 1; 0 = uniform)
//!     --rate <r>                     total offered load, requests per kilocycle,
//!                                    split evenly across tenants (default 0.5)
//!     --arrival <kind>               poisson|burst|diurnal (default poisson)
//!     --requests <n>                 requests per tenant (default 192)
//!     --slo-cycles <n>               tenant-0 deadline; tenant i gets n*(i+1)
//!     --batch-max / --linger / --lanes as serve-sim (lanes are per node)
//!     --candidates <fraction>        tier-0 exact fraction (default 0.05)
//!     --seed <n>                     base seed (flag > ENMC_SEED > 7)
//!     --offload                      plan per-query offload for every tenant's
//!                                    calibrated ladder (NMP vs CPU roofline)
//!     --memory <preset>              memory technology preset, as simulate
//!     --threads / --check-protocol / --report as simulate (reports are
//!                                    byte-identical for any worker count)
//!     --cost-model / --audit-rate / --coeffs / --coeffs-out as serve-sim
//! enmc tune [options]                constraint-driven design-space auto-tuning
//!     --workload <abbr>              lstm|transformer|gnmt|xmlcnn|s1m|s10m|s100m
//!     --ranks <n,...>                rank-unit axis levels (default 32,64)
//!     --lanes <n,...>                screener-lane axis levels (default 64,128)
//!     --screen-bits <n,...>          screener bitwidth levels (default 4)
//!     --screen-shift <n,...>         screening-level shifts (default 0,1)
//!     --candidates <n,...>           candidate-count levels (default 64,128)
//!     --batch-max <n,...>            batch-size-cap levels (default 4)
//!     --linger <n,...>               linger-window levels, cycles (default 2000)
//!     --ecc <on|off,...>             DRAM-controller ECC levels (default off,on)
//!     --memory <preset,...>          memory-technology axis levels (default
//!                                    ddr4-2666; list all four for per-tech
//!                                    frontiers — see `enmc list-memory`)
//!     --max-area-mm2 <f>             reject designs pricier than this area
//!     --max-power-mw <f>             reject designs above this power
//!     --search <mode>                exhaustive|guided (default exhaustive;
//!                                    both produce byte-identical frontiers)
//!     --frontier-out <file>          write the tune-frontier-v1 JSON fixture
//!     --cost-model <name>            cycle-accurate|surrogate (default
//!                                    surrogate; audits keep it honest)
//!     --audit-rate <f>               audited fraction (default 0.1)
//!     --seed <n>                     audit + sampler seed (flag > ENMC_SEED > 7)
//!     --threads <n>                  evaluation workers (output is
//!                                    bit-identical for any n)
//!     --report <text|json>           output format (default text)
//! enmc offload-plan [options]        per-query NMP-vs-CPU offload planning
//!     --workload <abbr>              lstm|transformer|gnmt|xmlcnn|s1m|s10m|s100m
//!     --candidates <fraction>        tier-0 exact fraction (default 0.05)
//!     --batch-max <n>                plan batches 1..=n (default 4)
//!     --degrade-tiers <K:S,...>      ladder to plan (default: K, K/2:1, K/4:2)
//!     --memory <preset>              memory technology preset, as simulate
//!     --seed / --threads / --cost-model / --audit-rate / --report as tune
//! enmc fault-sweep [options]         quality-vs-refresh-energy resilience sweep
//!     --shape <name>                 lstm-wikitext2|transformer-wikitext103|
//!                                    gnmt-wmt16|xmlcnn-amazon670k (short forms ok)
//!     --ber <f>                      uniform bit-error rate in [0, 1] (default 0)
//!     --multipliers <m,...>          refresh-interval multipliers >= 1 (default 1)
//!     --weak-columns <f>             tRCD-marginal column fraction (default 0)
//!     --memory <preset>              preset whose error profile scales the
//!                                    injected faults (default ddr4-2666)
//!     --ecc                          protect weights with SEC-DED (72,64)
//!     --queries <n>                  queries per sweep point (default 256)
//!     --seed <n>                     fault-map + query seed (flag > ENMC_SEED > 7)
//!     --threads <n>                  workers (output is bit-identical for any n)
//!     --trace-out / --report as simulate
//! enmc profile [options]             top-down cost attribution of one run
//!     --shape <abbr>                 lstm|transformer|gnmt|xmlcnn|s1m|s10m|s100m
//!     --scheme <name>                nda|chameleon|tensordimm|enmc (simulated
//!                                    schemes only; default enmc)
//!     --batch <n>                    batch size (default 1)
//!     --candidates <fraction>        exact fraction in (0, 1] (default 0.05)
//!     --threads <n>                  workers for the sharded run; the tree on
//!                                    stdout is bit-identical for any n
//!     --trace-out <file>             Chrome trace with counter tracks
//!                                    (queue depth, open rows, busy lanes)
//!     --report <text|json>           text prints the cost tree; json emits the
//!                                    RunReport with its breakdown rows
//!     --memory <preset>              memory technology preset, as simulate
//!     --self-profile                 host-side span rollup on stderr
//! enmc bench-diff <old> <new>        gate one BENCH_*.json against another
//!     --wall-tolerance <f>           allowed wall-clock regression fraction
//!                                    (default 0.2); deterministic metrics are
//!                                    compared at zero tolerance. Nonzero exit
//!                                    on any gate failure.
//! enmc asm <file>                    assemble an ENMC program, print frames
//! enmc workloads                     print the Table 2 workloads
//! enmc list-memory                   print the memory-technology preset table
//! ```

use enmc::arch::baseline::BaselineKind;
use enmc::arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc::cli::{
    flag_value, parse_arrival_kind, parse_axis_counts, parse_axis_levels, parse_batch, parse_ber,
    parse_budget_cap, parse_candidate_fraction, parse_count, parse_degrade_tiers,
    parse_ecc_levels, parse_memory, parse_multipliers, parse_placement, parse_rate,
    parse_report_format, parse_search_mode, parse_shape, parse_threads, parse_wall_tolerance,
    parse_zipf, ArrivalKind, CommonArgs, CostModelKind, ReportFormat,
};
use enmc::compiler::{lower_screening, MemoryLayout, TaskDescriptor};
use enmc::dram::fuzz;
use enmc::dram::{AddressMapping, DramConfig, FuzzRequest, InjectedBug, PatternKind, Reproducer};
use enmc::isa::{Instruction, Program};
use enmc::mem::MemTech;
use enmc::model::workloads::{Workload, WorkloadId};
use enmc::obs::report::Stopwatch;
use enmc::obs::trace::export_chrome;
use enmc::obs::TraceBuffer;
use enmc::par::SimConfig;
use enmc::perf::bench::BenchRecord;
use enmc::perf::SelfProfiler;
use enmc::pipeline::{
    attribute_run, report_from_result, report_from_sharded, scheme_label, Pipeline,
    PipelineConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve-sim") => cmd_serve_sim(&args[1..]),
        Some("fleet-sim") => cmd_fleet_sim(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("offload-plan") => cmd_offload_plan(&args[1..]),
        Some("fault-sweep") => cmd_fault_sweep(&args[1..]),
        Some("fuzz-dram") => cmd_fuzz_dram(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("workloads") => cmd_workloads(),
        Some("list-memory") => cmd_list_memory(),
        _ => {
            eprint!("{}", USAGE);
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
enmc — ENMC (MICRO'21) reproduction

usage:
  enmc demo                       run the quickstart pipeline
  enmc simulate [--workload W] [--scheme S] [--batch N] [--candidates F]
                [--threads N] [--seed N] [--memory PRESET] [--trace-out FILE]
                [--report text|json] [--check-protocol]
  enmc serve-sim [--workload W] [--arrival poisson|burst|diurnal|trace]
                 [--rate R] [--requests N] [--slo-cycles S] [--batch-max B]
                 [--linger L] [--lanes N] [--degrade-tiers K:S,...]
                 [--shed-queue N] [--degrade-queue N] [--upgrade-queue N]
                 [--seed N] [--candidates F] [--trace-file FILE]
                 [--quality N] [--offload] [--threads N] [--memory PRESET]
                 [--trace-out FILE] [--report text|json] [--check-protocol]
                 [--cost-model cycle-accurate|surrogate] [--audit-rate F]
                 [--coeffs FILE] [--coeffs-out FILE]
  enmc fleet-sim [--shape W] [--nodes N] [--shards N] [--tenants N]
                 [--placement consistent-hash|popularity] [--replicas N]
                 [--zipf S] [--rate R] [--arrival poisson|burst|diurnal]
                 [--requests N] [--slo-cycles S] [--batch-max B] [--linger L]
                 [--lanes N] [--candidates F] [--offload] [--seed N]
                 [--threads N] [--memory PRESET] [--report text|json]
                 [--check-protocol]
                 [--cost-model cycle-accurate|surrogate] [--audit-rate F]
                 [--coeffs FILE] [--coeffs-out FILE]
  enmc tune [--workload W] [--ranks N,...] [--lanes N,...]
            [--screen-bits N,...] [--screen-shift N,...]
            [--candidates N,...] [--batch-max N,...] [--linger N,...]
            [--ecc on|off,...] [--memory PRESET,...]
            [--max-area-mm2 F] [--max-power-mw F]
            [--search exhaustive|guided] [--frontier-out FILE]
            [--cost-model cycle-accurate|surrogate] [--audit-rate F]
            [--seed N] [--threads N] [--report text|json]
  enmc offload-plan [--workload W] [--candidates F] [--batch-max N]
                    [--degrade-tiers K:S,...] [--seed N] [--threads N]
                    [--memory PRESET]
                    [--cost-model cycle-accurate|surrogate] [--audit-rate F]
                    [--report text|json]
  enmc fault-sweep [--shape S] [--ber F] [--multipliers M,...]
                   [--weak-columns F] [--ecc] [--queries N] [--seed N]
                   [--threads N] [--memory PRESET] [--trace-out FILE]
                   [--report text|json]
                   [--cost-model cycle-accurate|surrogate] [--audit-rate F]
                   [--coeffs FILE] [--coeffs-out FILE]
  enmc fuzz-dram [--seeds N] [--len N] [--pattern P] [--inject-bug B]
                 [--memory PRESET] [--repro-out FILE] [--check-protocol]
  enmc profile [--shape W] [--scheme S] [--batch N] [--candidates F]
               [--threads N] [--memory PRESET] [--trace-out FILE]
               [--report text|json] [--self-profile]
  enmc bench-diff OLD.json NEW.json [--wall-tolerance F]
  enmc asm <file.s>               assemble and dump PRECHARGE frames
  enmc workloads                  list the Table 2 workloads
  enmc list-memory                list the memory-technology presets

schemes: cpu, cpu-as, nda, chameleon, tensordimm, tensordimm-large, enmc
workloads: lstm, transformer, gnmt, xmlcnn, s1m, s10m, s100m
shapes: lstm-wikitext2, transformer-wikitext103, gnmt-wmt16, xmlcnn-amazon670k
patterns: stream-sweep, same-bank-hammer, bank-group-conflict,
          refresh-straddle, row-thrash, turnaround-mix, moving-inversion,
          lowered
bugs: tfaw-1, trcd-1, trp-1, twtr-1
memory presets: ddr4-2666, ddr5-4800, lpddr4-3200, hbm2
";

/// Stamps the schema-v10 memory-technology fields (preset name plus its
/// error profile) into a report.
fn stamp_memory(report: &mut enmc::obs::report::RunReport, tech: MemTech) {
    let p = tech.preset();
    report.memory_tech = tech.name().to_string();
    report.ber_scale = p.error.ber_scale;
    report.retention_base = p.error.retention_base;
    report.weak_column_scale = p.error.weak_column_scale;
}

fn cmd_demo() -> i32 {
    let mut pipeline = match Pipeline::build(&PipelineConfig::default()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let q = pipeline.evaluate_quality(60);
    println!("quality vs exact classification over {} queries:", q.queries);
    println!("  top-1 agreement {:.1}%, P@10 {:.1}%, ppl ratio {:.3}",
        100.0 * q.top1_agreement, 100.0 * q.precision_at_k, q.perplexity_ratio());
    let cpu = pipeline.simulate(Scheme::CpuFull, 1);
    let enmc = pipeline.simulate_enmc();
    println!("latency: CPU {:.1} us -> ENMC {:.2} us ({:.1}x)",
        cpu.ns / 1e3, enmc.ns / 1e3, cpu.ns / enmc.ns);
    0
}

fn parse_workload(s: &str) -> Option<Workload> {
    let id = match s.to_ascii_lowercase().as_str() {
        "lstm" => WorkloadId::LstmW33K,
        "transformer" => WorkloadId::TransformerW268K,
        "gnmt" => WorkloadId::GnmtE32K,
        "xmlcnn" => WorkloadId::Xmlcnn670K,
        "s1m" => WorkloadId::S1M,
        "s10m" => WorkloadId::S10M,
        "s100m" => WorkloadId::S100M,
        _ => return None,
    };
    Some(id.workload())
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    Some(match s.to_ascii_lowercase().as_str() {
        "cpu" => Scheme::CpuFull,
        "cpu-as" => Scheme::CpuScreened,
        "nda" => Scheme::Baseline(BaselineKind::Nda),
        "chameleon" => Scheme::Baseline(BaselineKind::Chameleon),
        "tensordimm" => Scheme::Baseline(BaselineKind::TensorDimm),
        "tensordimm-large" => Scheme::Baseline(BaselineKind::TensorDimmLarge),
        "enmc" => Scheme::Enmc,
        _ => return None,
    })
}

fn cmd_simulate(args: &[String]) -> i32 {
    let workload = match parse_workload(flag_value(args, "--workload").unwrap_or("transformer")) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload; try: lstm transformer gnmt xmlcnn s1m s10m s100m");
            return 2;
        }
    };
    let scheme = match parse_scheme(flag_value(args, "--scheme").unwrap_or("enmc")) {
        Some(s) => s,
        None => {
            eprintln!("unknown scheme; try: cpu cpu-as nda chameleon tensordimm enmc");
            return 2;
        }
    };
    let batch = match flag_value(args, "--batch").map(parse_batch).unwrap_or(Ok(1)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let frac = match flag_value(args, "--candidates")
        .map(parse_candidate_fraction)
        .unwrap_or(Ok(0.05))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // The shared flag bundle parses once; simulate records the seed (the
    // run itself is deterministic) and has no cost backend to bind.
    let common = match CommonArgs::parse(args, 7) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let format = common.format;
    let trace_out = flag_value(args, "--trace-out");
    let check_protocol = args.iter().any(|a| a == "--check-protocol");
    // --threads wins; ENMC_THREADS is the env hook for harnesses that
    // cannot edit the command line (e.g. the CI matrix).
    let threads = common.threads_or_env();
    if threads.is_some() && trace_out.is_some() {
        eprintln!("--trace-out requires the representative-rank run; drop --threads (and unset ENMC_THREADS)");
        return 2;
    }
    let seed = common.seed;
    let memory = match common.single_memory() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let job = ClassificationJob {
        categories: workload.categories,
        hidden: workload.hidden,
        reduced: (workload.hidden / 4).max(1),
        batch,
        candidates: ((workload.categories as f64) * frac).round() as usize,
    };
    let sys = SystemModel::table3().with_memory(memory);
    eprintln!(
        "simulating {} (l={}, d={}) batch {batch}, {} exact candidates on {}",
        workload.abbr,
        workload.categories,
        workload.hidden,
        job.candidates,
        memory.name()
    );
    let mut trace = trace_out.map(|_| TraceBuffer::unbounded());
    let sw = Stopwatch::start();
    let (result, mut report) = match threads {
        Some(n) => {
            // Whole-system run: every rank unit simulated, sharded over n
            // workers. Bit-identical to n = 1 by construction.
            let mut sim_cfg = SimConfig::with_threads(n);
            if check_protocol {
                sim_cfg = sim_cfg.with_protocol_check();
            }
            let run = sys.run_sharded(&job, scheme, &sim_cfg);
            let report = report_from_sharded("simulate", workload.abbr, &job, &sys, &run);
            (run.result, report)
        }
        None => {
            let result = sys.run_checked(&job, scheme, trace.as_mut(), check_protocol);
            let sim_wall_ns = sw.elapsed_ns();
            let report =
                report_from_result("simulate", workload.abbr, &job, &result, sim_wall_ns);
            (result, report)
        }
    };
    report.notes.push(format!("seed {seed}"));
    stamp_memory(&mut report, memory);
    if let (Some(path), Some(tb)) = (trace_out, trace.as_mut()) {
        // Timestamps are DRAM-clock cycles; Chrome wants microseconds.
        let ns_per_cycle = sys.memory().ns_per_cycle();
        let chrome = export_chrome(&tb.drain(), ns_per_cycle);
        match std::fs::write(path, chrome) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    let violations = report.protocol_violations;
    if format == ReportFormat::Json {
        println!("{}", report.to_json());
        return i32::from(check_protocol && violations > 0);
    }
    let cpu = sys.run(&job, Scheme::CpuFull);
    println!("  latency : {:.2} us", result.ns / 1e3);
    println!("  speedup : {:.1}x vs CPU full classification", result.speedup_over(&cpu));
    if report.threads > 0 {
        println!(
            "  threads : {} worker(s), host-side parallel speedup {:.2}x",
            report.threads, report.speedup
        );
    }
    if let Some(e) = &result.energy {
        println!(
            "  energy  : {:.2} uJ (static {:.0}% / access {:.0}% / logic {:.0}%)",
            e.total_nj() / 1e3,
            100.0 * e.dram_static_nj / e.total_nj(),
            100.0 * e.dram_access_nj / e.total_nj(),
            100.0 * e.logic_nj / e.total_nj()
        );
    }
    if let Some(r) = &result.rank_report {
        if report.threads > 0 {
            // Sharded run: counters are summed over every rank, so bus
            // utilization is not meaningful as a single-channel percentage.
            println!(
                "  system  : {} DRAM cycles (straggler rank), row-hit {:.1}%",
                r.dram_cycles,
                100.0 * r.dram.row_hit_rate(),
            );
        } else {
            println!(
                "  per-rank: {} DRAM cycles, row-hit {:.1}%, bus util {:.1}%",
                r.dram_cycles,
                100.0 * r.dram.row_hit_rate(),
                100.0 * r.dram.bus_utilization()
            );
        }
        for p in &report.phases {
            println!(
                "  phase   : {:<10} {:>12} cycles  {:>10.2} us simulated",
                p.name,
                p.sim_cycles,
                p.sim_ns / 1e3
            );
        }
    }
    if check_protocol {
        println!("  protocol: {violations} {} timing violation(s)", memory.name());
        if violations > 0 {
            eprintln!("protocol check FAILED: rerun with --trace-out to see per-rule events");
            return 1;
        }
    }
    0
}

/// Builds the arrival process for `serve-sim`: the CLI exposes one
/// nominal `--rate`, and the non-Poisson families derive their envelope
/// from it (bursts peak at 10x the calm rate, the diurnal ramp sweeps
/// 0.25x–2x).
fn build_arrival(
    kind: ArrivalKind,
    rate: f64,
    trace_file: Option<&str>,
) -> Result<enmc::serve::ArrivalProcess, String> {
    use enmc::serve::ArrivalProcess;
    Ok(match kind {
        ArrivalKind::Poisson => ArrivalProcess::Poisson { rate },
        ArrivalKind::Burst => ArrivalProcess::Burst {
            calm_rate: rate,
            burst_rate: rate * 10.0,
            calm_cycles: 40_000.0,
            burst_cycles: 10_000.0,
        },
        ArrivalKind::Diurnal => ArrivalProcess::Diurnal {
            trough_rate: rate * 0.25,
            peak_rate: rate * 2.0,
            period_cycles: 200_000,
        },
        ArrivalKind::Trace => {
            let path = trace_file
                .ok_or_else(|| "--arrival trace requires --trace-file <file>".to_string())?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --trace-file {path}: {e}"))?;
            let mut at = Vec::new();
            for tok in text.split_whitespace() {
                at.push(
                    tok.parse::<u64>()
                        .map_err(|_| format!("--trace-file entry '{tok}' is not a cycle count"))?,
                );
            }
            ArrivalProcess::Trace { at }
        }
    })
}

fn cmd_serve_sim(args: &[String]) -> i32 {
    use enmc::obs::MetricsRegistry;
    use enmc::screen::infer::SelectionPolicy;
    use enmc::serve::{simulate_with_cost, ServeConfig};
    use enmc::serve::tier::default_tiers;
    use enmc::surrogate::CostModel;

    let workload = match parse_workload(flag_value(args, "--workload").unwrap_or("lstm")) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload; try: lstm transformer gnmt xmlcnn s1m s10m s100m");
            return 2;
        }
    };
    // Small integer flags share parse_count; each names its own flag.
    macro_rules! count_flag {
        ($flag:literal, $default:expr) => {
            match flag_value(args, $flag).map(|r| parse_count($flag, r)).unwrap_or(Ok($default)) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        };
    }
    let rate = match flag_value(args, "--rate").map(parse_rate).unwrap_or(Ok(0.5)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let arrival_kind = match flag_value(args, "--arrival")
        .map(parse_arrival_kind)
        .unwrap_or(Ok(ArrivalKind::Poisson))
    {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let frac = match flag_value(args, "--candidates")
        .map(parse_candidate_fraction)
        .unwrap_or(Ok(0.05))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // --seed/--threads/--cost-model/--audit-rate/--report: the shared
    // bundle, one precedence rule per flag across every subcommand.
    let common = match CommonArgs::parse(args, 7) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let format = common.format;
    let requests = count_flag!("--requests", 256) as usize;
    let slo_cycles = count_flag!("--slo-cycles", 100_000);
    let batch_max = count_flag!("--batch-max", 4) as usize;
    let linger_cycles = count_flag!("--linger", 2_000);
    let lanes = count_flag!("--lanes", 2) as usize;
    let shed_queue_depth = count_flag!("--shed-queue", 48) as usize;
    let degrade_queue_depth = count_flag!("--degrade-queue", 12) as usize;
    let upgrade_queue_depth = count_flag!("--upgrade-queue", 3) as usize;
    let seed = common.seed;
    let quality_queries = flag_value(args, "--quality").map(|r| parse_count("--quality", r));
    let quality_queries = match quality_queries {
        Some(Ok(n)) => Some(n as usize),
        Some(Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
        None => None,
    };
    let check_protocol = args.iter().any(|a| a == "--check-protocol");
    // Threads only speed up the calibration pass; the outcome and report
    // are byte-identical for any worker count.
    let sim_cfg = SimConfig::resolve(common.threads, check_protocol);
    let backend = common.backend(CostModelKind::CycleAccurate);
    let memory = match common.single_memory() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let arrival = match build_arrival(arrival_kind, rate, flag_value(args, "--trace-file")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let job = ClassificationJob {
        categories: workload.categories,
        hidden: workload.hidden,
        reduced: (workload.hidden / 4).max(1),
        batch: 1,
        candidates: ((workload.categories as f64) * frac).round() as usize,
    };
    let tiers = match flag_value(args, "--degrade-tiers") {
        Some(raw) => match parse_degrade_tiers(raw) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        None => default_tiers(&job),
    };

    let mut cfg = ServeConfig {
        arrival,
        requests,
        slo_cycles,
        batch_max,
        linger_cycles,
        lanes,
        tiers,
        degrade_queue_depth,
        upgrade_queue_depth,
        shed_queue_depth,
        seed,
        offload: None,
    };
    eprintln!(
        "serving {} (l={}, d={}): {} {} request(s) at rate {rate}/kcycle, {} tier(s)",
        workload.abbr,
        workload.categories,
        workload.hidden,
        cfg.requests,
        cfg.arrival.kind(),
        cfg.tiers.len()
    );

    let sys = SystemModel::table3().with_memory(memory);
    let mut registry = MetricsRegistry::new();
    let trace_out = flag_value(args, "--trace-out");
    let mut trace = trace_out.map(|_| TraceBuffer::unbounded());
    let mut cost = CostModel::new(backend, seed);
    if let Some(path) = flag_value(args, "--coeffs") {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        };
        if let Err(e) = cost.load_coeffs(&raw) {
            eprintln!("cannot load coefficients from {path}: {e}");
            return 1;
        }
    }
    if args.iter().any(|a| a == "--offload") {
        // Plan before serving: calibrate the ladder once more through the
        // same cost model and install the cheaper executor per admission
        // point. Deterministic, so reports stay thread-invariant.
        match enmc::tune::plan_ladder(&sys, &job, &cfg.tiers, cfg.batch_max, &sim_cfg, &mut cost)
        {
            Ok((_, decisions, plan)) => {
                let nmp = decisions.iter().filter(|d| d.nmp).count();
                eprintln!(
                    "offload plan: {nmp}/{} (tier, batch) point(s) stay on NMP",
                    decisions.len()
                );
                cfg.offload = Some(plan);
            }
            Err(v) => {
                eprintln!("error: {v}");
                return 1;
            }
        }
    }
    let outcome =
        match simulate_with_cost(&sys, &job, &cfg, &sim_cfg, &mut registry, trace.as_mut(), &mut cost)
        {
            Ok(o) => o,
            Err(v) => {
                eprintln!("error: {v}");
                return 1;
            }
        };
    if let Some(path) = flag_value(args, "--coeffs-out") {
        if let Err(e) = std::fs::write(path, cost.coeffs_to_json()) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    }

    // Price the degrade ladder: each tier's quality over the same seeded
    // query stream, on a pipeline-scale model (the workload's full
    // classifier is too large to rebuild here, so candidate counts are
    // rescaled to the pipeline's category count).
    if let Some(n) = quality_queries {
        let mut pipeline = match Pipeline::build(&PipelineConfig::default()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        let pipe_l = pipeline.config().categories;
        const TIER_NAMES: [&str; 8] = ["0", "1", "2", "3", "4", "5", "6", "7"];
        for (t, tier) in cfg.tiers.iter().enumerate() {
            let scaled = ((tier.candidates as f64 / job.candidates.max(1) as f64
                * pipeline.config().candidates as f64)
                .round() as usize)
                .clamp(1, pipe_l);
            let q = pipeline.evaluate_quality_policy_with(
                n,
                SelectionPolicy::TopM(scaled),
                &sim_cfg,
            );
            let label = TIER_NAMES.get(t).copied().unwrap_or("8+");
            registry.gauge_set("serve.quality_top1", &[("tier", label)], q.top1_agreement);
            registry.gauge_set("serve.quality_p_at_10", &[("tier", label)], q.precision_at_k);
        }
    }

    let mut report = outcome.report(workload.abbr, &cfg, &registry);
    stamp_memory(&mut report, memory);
    if let (Some(path), Some(tb)) = (trace_out, trace.as_mut()) {
        let chrome = export_chrome(&tb.drain(), outcome.ns_per_cycle);
        match std::fs::write(path, chrome) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    let violations = report.protocol_violations;
    if format == ReportFormat::Json {
        println!("{}", report.to_json());
        return i32::from(check_protocol && violations > 0);
    }
    println!(
        "  requests: {} generated, {} admitted, {} completed, {} shed",
        outcome.generated, outcome.admitted, outcome.completed, outcome.shed
    );
    let us = |cycles: f64| cycles * outcome.ns_per_cycle / 1e3;
    println!(
        "  latency : p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, p999 {:.1} us",
        us(outcome.latency.p50()),
        us(outcome.latency.p90()),
        us(outcome.latency.p99()),
        us(outcome.latency.p999())
    );
    println!(
        "  slo     : {:.1}% within {} cycles ({:.1} us)",
        100.0 * outcome.slo_attainment(),
        cfg.slo_cycles,
        us(cfg.slo_cycles as f64)
    );
    println!(
        "  degrade : {} transition(s); per-tier completions {:?}",
        outcome.degrade_transitions, outcome.per_tier_completed
    );
    println!(
        "  queue   : max depth {}, {} batch(es), makespan {:.1} us",
        outcome.max_queue_depth,
        outcome.batches.len(),
        us(outcome.makespan_cycles as f64)
    );
    if cfg.offload.is_some() {
        println!(
            "  offload : {} batch(es) on NMP, {} on the CPU roofline",
            outcome.offload_nmp, outcome.offload_cpu
        );
    }
    if check_protocol {
        println!("  protocol: {violations} DDR4 timing violation(s)");
        if violations > 0 {
            return 1;
        }
    }
    0
}

fn cmd_fleet_sim(args: &[String]) -> i32 {
    use enmc::fleet::{simulate_fleet, FleetConfig, PlacementPolicy, TenantConfig};
    use enmc::obs::MetricsRegistry;
    use enmc::serve::tier::default_tiers;
    use enmc::surrogate::CostModel;

    let workload = match parse_workload(flag_value(args, "--shape").unwrap_or("lstm")) {
        Some(w) => w,
        None => {
            eprintln!("unknown shape; try: lstm transformer gnmt xmlcnn s1m s10m s100m");
            return 2;
        }
    };
    macro_rules! count_flag {
        ($flag:literal, $default:expr) => {
            match flag_value(args, $flag).map(|r| parse_count($flag, r)).unwrap_or(Ok($default)) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        };
    }
    let nodes = count_flag!("--nodes", 4) as usize;
    let shards = count_flag!("--shards", nodes as u64) as usize;
    let tenants_n = count_flag!("--tenants", 2) as usize;
    let requests = count_flag!("--requests", 192) as usize;
    let slo_cycles = count_flag!("--slo-cycles", 100_000);
    let batch_max = count_flag!("--batch-max", 4) as usize;
    let linger_cycles = count_flag!("--linger", 2_000);
    let lanes = count_flag!("--lanes", 2) as usize;
    // --replicas 0 is meaningful (no replication), so it bypasses
    // parse_count's >= 1 rule.
    let replicas = match flag_value(args, "--replicas").map(|r| {
        r.parse::<usize>().map_err(|_| format!("--replicas expects an integer >= 0, got '{r}'"))
    }) {
        Some(Ok(n)) => n,
        Some(Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
        None => 2,
    };
    let placement = match flag_value(args, "--placement")
        .map(parse_placement)
        .unwrap_or(Ok(PlacementPolicy::PopularityAware))
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let zipf_s = match flag_value(args, "--zipf").map(parse_zipf).unwrap_or(Ok(1.0)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let rate = match flag_value(args, "--rate").map(parse_rate).unwrap_or(Ok(0.5)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let arrival_kind = match flag_value(args, "--arrival")
        .map(parse_arrival_kind)
        .unwrap_or(Ok(ArrivalKind::Poisson))
    {
        Ok(ArrivalKind::Trace) => {
            eprintln!("--arrival trace is not supported by fleet-sim; use serve-sim");
            return 2;
        }
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let frac = match flag_value(args, "--candidates")
        .map(parse_candidate_fraction)
        .unwrap_or(Ok(0.05))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let common = match CommonArgs::parse(args, 7) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let format = common.format;
    let seed = common.seed;
    let check_protocol = args.iter().any(|a| a == "--check-protocol");
    // Threads only speed up the calibration pass; the outcome and report
    // are byte-identical for any worker count.
    let sim_cfg = SimConfig::resolve(common.threads, check_protocol);
    let backend = common.backend(CostModelKind::CycleAccurate);
    let memory = match common.single_memory() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let job = ClassificationJob {
        categories: workload.categories,
        hidden: workload.hidden,
        reduced: (workload.hidden / 4).max(1),
        batch: 1,
        candidates: ((workload.categories as f64) * frac).round() as usize,
    };
    let tiers = default_tiers(&job);
    // Tenant i: lower priority as i grows — a looser deadline but an
    // earlier shed threshold, so contention sheds the low-priority
    // tenants first. The total offered rate is split evenly.
    let per_tenant_rate = rate / tenants_n as f64;
    let tenants: Vec<TenantConfig> = (0..tenants_n)
        .map(|i| {
            let arrival = match build_arrival(arrival_kind, per_tenant_rate, None) {
                Ok(a) => a,
                Err(_) => unreachable!("trace arrivals rejected above"),
            };
            let mut t = TenantConfig::new(
                &format!("t{i}"),
                arrival,
                requests,
                slo_cycles * (i as u64 + 1),
                tiers.clone(),
                seed.wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            );
            t.shed_queue_depth = (48usize >> i).max(4);
            t
        })
        .collect();
    let cfg = FleetConfig {
        nodes,
        shards,
        replicas,
        placement,
        zipf_s,
        batch_max,
        linger_cycles,
        lanes,
        tenants,
        seed,
        offload: args.iter().any(|a| a == "--offload"),
        ..Default::default()
    };
    eprintln!(
        "fleet: {} (l={}, d={}) on {} node(s), {} shard(s) ({} placement, {} replica(s)), \
         {} tenant(s) at {rate}/kcycle total",
        workload.abbr,
        workload.categories,
        workload.hidden,
        nodes,
        shards,
        placement.name(),
        replicas,
        tenants_n
    );

    let sys = SystemModel::table3().with_memory(memory);
    let mut registry = MetricsRegistry::new();
    let mut cost = CostModel::new(backend, seed);
    if let Some(path) = flag_value(args, "--coeffs") {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        };
        if let Err(e) = cost.load_coeffs(&raw) {
            eprintln!("cannot load coefficients from {path}: {e}");
            return 1;
        }
    }
    let outcome = match simulate_fleet(&sys, &job, &cfg, &sim_cfg, &mut registry, &mut cost) {
        Ok(o) => o,
        Err(v) => {
            eprintln!("error: {v}");
            return 1;
        }
    };
    if let Some(path) = flag_value(args, "--coeffs-out") {
        if let Err(e) = std::fs::write(path, cost.coeffs_to_json()) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    }

    let mut report = outcome.report(workload.abbr, &cfg, &registry);
    stamp_memory(&mut report, memory);
    let violations = report.protocol_violations;
    if format == ReportFormat::Json {
        println!("{}", report.to_json());
        return i32::from(check_protocol && violations > 0);
    }
    let us = |cycles: f64| cycles * outcome.ns_per_cycle / 1e3;
    println!(
        "  fleet   : {} node(s), {} shard(s), {} hot-shard replica(s), network share {:.1}%",
        outcome.nodes,
        outcome.shards,
        outcome.hot_shard_replicas,
        100.0 * outcome.network_share()
    );
    for t in &outcome.tenants {
        println!(
            "  tenant {}: {} generated, {} admitted, {} shed; slo {:.1}%, p99 {:.1} us, \
             {} degrade step(s)",
            t.name,
            t.generated,
            t.admitted,
            t.shed,
            100.0 * t.slo_attainment(),
            us(t.latency.p99()),
            t.degrade_transitions
        );
    }
    println!(
        "  cluster : slo {:.1}%, {} batch(es), max queue {}, makespan {:.1} us",
        100.0 * outcome.slo_attainment(),
        outcome.batches.len(),
        outcome.max_queue_depth,
        us(outcome.makespan_cycles as f64)
    );
    if cfg.offload {
        println!(
            "  offload : {} batch(es) on NMP, {} on the CPU roofline",
            outcome.offload_nmp, outcome.offload_cpu
        );
    }
    if check_protocol {
        println!("  protocol: {violations} DDR4 timing violation(s)");
        if violations > 0 {
            return 1;
        }
    }
    0
}

fn cmd_tune(args: &[String]) -> i32 {
    use enmc::surrogate::CostModel;
    use enmc::tune::{frontier_json, tune, tune_report, Budget, SearchMode, TuneConfig, TuneSpace};

    let workload = match parse_workload(flag_value(args, "--workload").unwrap_or("lstm")) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload; try: lstm transformer gnmt xmlcnn s1m s10m s100m");
            return 2;
        }
    };
    let common = match CommonArgs::parse(args, 7) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Axis flags replace the default levels wholesale; tune() normalizes
    // (sorts, dedups) whatever the user listed.
    let mut space = TuneSpace::small();
    macro_rules! axis {
        ($flag:literal, $parser:ident, $field:ident, $ty:ty) => {
            if let Some(raw) = flag_value(args, $flag) {
                match $parser($flag, raw) {
                    Ok(levels) => space.$field = levels.into_iter().map(|n| n as $ty).collect(),
                    Err(e) => {
                        eprintln!("{e}");
                        return 2;
                    }
                }
            }
        };
    }
    axis!("--ranks", parse_axis_levels, ranks, usize);
    axis!("--lanes", parse_axis_levels, lanes, usize);
    axis!("--screen-bits", parse_axis_levels, screen_bits, u32);
    axis!("--screen-shift", parse_axis_counts, screen_shift, u32);
    axis!("--candidates", parse_axis_levels, candidates, usize);
    axis!("--batch-max", parse_axis_levels, batch_max, usize);
    axis!("--linger", parse_axis_counts, linger_cycles, u64);
    if let Some(raw) = flag_value(args, "--ecc") {
        match parse_ecc_levels(raw) {
            Ok(levels) => space.ecc = levels,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    }
    // The memory-technology axis: a single preset keeps the classic
    // 8-axis lattice; a comma list widens the space so the frontier can
    // trade technologies off against each other.
    space.memory = common.memory.clone();
    let max_area_mm2 = match flag_value(args, "--max-area-mm2")
        .map(|r| parse_budget_cap("--max-area-mm2", r))
        .transpose()
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let max_power_mw = match flag_value(args, "--max-power-mw")
        .map(|r| parse_budget_cap("--max-power-mw", r))
        .transpose()
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mode = match flag_value(args, "--search")
        .map(parse_search_mode)
        .unwrap_or(Ok(SearchMode::Exhaustive))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Tuning sweeps many designs, so the surrogate (with its seeded
    // audits) is the default backend; --cost-model cycle-accurate forces
    // full fidelity everywhere.
    let backend = common.backend(CostModelKind::Surrogate);
    let cfg = TuneConfig {
        space,
        budget: Budget { max_area_mm2, max_power_mw },
        backend,
        seed: common.seed,
        workers: common.workers(),
        mode,
    };
    let job = ClassificationJob {
        categories: workload.categories,
        hidden: workload.hidden,
        reduced: (workload.hidden / 4).max(1),
        batch: 1,
        candidates: ((workload.categories as f64) * 0.05).round() as usize,
    };
    let sys = SystemModel::table3();
    eprintln!(
        "tuning {} (l={}, d={}): {} search on {} worker(s)",
        workload.abbr,
        workload.categories,
        workload.hidden,
        mode.name(),
        cfg.workers
    );
    let result = match tune(&sys, &job, &cfg) {
        Ok(r) => r,
        Err(v) => {
            eprintln!("error: {v}");
            return 1;
        }
    };
    if let Some(path) = flag_value(args, "--frontier-out") {
        let j = frontier_json(workload.abbr, result.space_size, &cfg.budget, &result.frontier);
        match std::fs::write(path, j) {
            Ok(()) => eprintln!("frontier written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    let cost = CostModel::new(backend, common.seed);
    let mut report = tune_report(workload.abbr, &cfg, &result, &cost);
    match common.memory.as_slice() {
        [one] => stamp_memory(&mut report, *one),
        many => {
            // A multi-technology axis has no single preset to stamp; the
            // per-design labels carry it, and the joined list documents
            // the swept axis.
            report.memory_tech =
                many.iter().map(|t| t.name()).collect::<Vec<_>>().join(",");
        }
    }
    if common.format == ReportFormat::Json {
        println!("{}", report.to_json());
        return 0;
    }
    println!(
        "  space   : {} design(s), {} rejected by budget, {} evaluated ({} audited)",
        result.space_size,
        result.rejected,
        result.evaluated.len(),
        result.audited()
    );
    println!(
        "  frontier: {} point(s), {} evaluated design(s) dominated",
        result.frontier.len(),
        result.dominated
    );
    for p in &result.frontier {
        let d = &p.design;
        println!(
            "  {:<32} {:>12.1} ns {:>12.1} nJ/q {:>7.2} %q {:>9.3} mm2 {:>9.1} mW  {}",
            d.point.label(),
            d.latency_ns,
            d.energy_per_query_nj,
            d.quality_pct,
            d.cost.area_mm2,
            d.cost.power_mw,
            d.provenance()
        );
    }
    0
}

fn cmd_offload_plan(args: &[String]) -> i32 {
    use enmc::obs::report::RunReport;
    use enmc::serve::tier::default_tiers;
    use enmc::surrogate::CostModel;
    use enmc::tune::plan_ladder;

    let workload = match parse_workload(flag_value(args, "--workload").unwrap_or("lstm")) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload; try: lstm transformer gnmt xmlcnn s1m s10m s100m");
            return 2;
        }
    };
    let common = match CommonArgs::parse(args, 7) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let frac = match flag_value(args, "--candidates")
        .map(parse_candidate_fraction)
        .unwrap_or(Ok(0.05))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let batch_max = match flag_value(args, "--batch-max")
        .map(|r| parse_count("--batch-max", r))
        .unwrap_or(Ok(4))
    {
        Ok(n) => n as usize,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let job = ClassificationJob {
        categories: workload.categories,
        hidden: workload.hidden,
        reduced: (workload.hidden / 4).max(1),
        batch: 1,
        candidates: ((workload.categories as f64) * frac).round() as usize,
    };
    let tiers = match flag_value(args, "--degrade-tiers") {
        Some(raw) => match parse_degrade_tiers(raw) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        None => default_tiers(&job),
    };
    let sim_cfg = SimConfig::resolve(common.threads, false);
    let backend = common.backend(CostModelKind::CycleAccurate);
    let mut cost = CostModel::new(backend, common.seed);
    let memory = match common.single_memory() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let sys = SystemModel::table3().with_memory(memory);
    eprintln!(
        "planning offload for {} (l={}, d={}): {} tier(s), batches 1..={batch_max}",
        workload.abbr,
        workload.categories,
        workload.hidden,
        tiers.len()
    );
    let (table, decisions, _plan) =
        match plan_ladder(&sys, &job, &tiers, batch_max, &sim_cfg, &mut cost) {
            Ok(out) => out,
            Err(v) => {
                eprintln!("error: {v}");
                return 1;
            }
        };
    let nmp = decisions.iter().filter(|d| d.nmp).count() as u64;
    let cpu = decisions.len() as u64 - nmp;
    let mut report = RunReport::new("offload-plan", workload.abbr, "enmc");
    stamp_memory(&mut report, memory);
    report.cost_backend = cost.backend().name().to_string();
    report.batch = batch_max as u64;
    report.candidates = job.candidates as u64;
    report.offload_nmp = nmp;
    report.offload_cpu = cpu;
    let stats = cost.stats();
    report.fit_anchors = stats.fit_anchors;
    report.audit_points = stats.audited;
    report.audit_max_rel_err = stats.max_rel_err;
    for d in &decisions {
        report.notes.push(format!(
            "tier {} batch {}: cpu {} cy, nmp {} cy -> {}",
            d.tier,
            d.batch,
            d.cpu_cycles,
            d.nmp_cycles,
            if d.nmp { "nmp" } else { "cpu" }
        ));
    }
    if common.format == ReportFormat::Json {
        println!("{}", report.to_json());
        return 0;
    }
    println!("  clock   : {:.3} ns/cycle", table.ns_per_cycle);
    println!("  tier batch   cpu-cycles   nmp-cycles  executor");
    for d in &decisions {
        println!(
            "  {:>4} {:>5} {:>12} {:>12}  {}",
            d.tier,
            d.batch,
            d.cpu_cycles,
            d.nmp_cycles,
            if d.nmp { "nmp" } else { "cpu" }
        );
    }
    println!("  plan    : {nmp} point(s) on NMP, {cpu} on the CPU roofline");
    0
}

fn cmd_fault_sweep(args: &[String]) -> i32 {
    use enmc::resilience::{render_text, run_fault_sweep, FaultSweepArgs};

    let shape = match parse_shape(flag_value(args, "--shape").unwrap_or("lstm-wikitext2")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let ber = match flag_value(args, "--ber").map(parse_ber).unwrap_or(Ok(0.0)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Default to the nominal schedule only: `--ber 0` with no extra flags
    // is exactly the fault-free path (CI diffs that bit-for-bit).
    let multipliers = match flag_value(args, "--multipliers")
        .map(parse_multipliers)
        .unwrap_or(Ok(vec![1.0]))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let weak_columns = match flag_value(args, "--weak-columns").map(parse_ber).unwrap_or(Ok(0.0))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{}", e.replace("--ber", "--weak-columns"));
            return 2;
        }
    };
    let ecc = args.iter().any(|a| a == "--ecc");
    let queries = match flag_value(args, "--queries")
        .map(|r| parse_count("--queries", r))
        .unwrap_or(Ok(256))
    {
        Ok(n) => n as usize,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let common = match CommonArgs::parse(args, 7) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let seed = common.seed;
    let format = common.format;
    let workers = common.workers();
    let backend = common.backend(CostModelKind::CycleAccurate);
    let memory = match common.single_memory() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let sweep_args = FaultSweepArgs {
        shape,
        ber,
        multipliers,
        weak_columns,
        ecc,
        queries,
        seed,
        workers,
        backend,
        memory,
        coeffs_in: flag_value(args, "--coeffs").map(String::from),
        coeffs_out: flag_value(args, "--coeffs-out").map(String::from),
    };
    eprintln!(
        "fault sweep on {}: ber {ber}, multipliers {:?}, ecc {}, {} queries, seed {seed}, {}",
        shape.name(),
        sweep_args.multipliers,
        if ecc { "on" } else { "off" },
        queries,
        memory.name()
    );
    let trace_out = flag_value(args, "--trace-out");
    let mut trace = trace_out.map(|_| TraceBuffer::unbounded());
    let (points, frontier, report) = match run_fault_sweep(&sweep_args, trace.as_mut()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let (Some(path), Some(tb)) = (trace_out, trace.as_mut()) {
        let chrome = export_chrome(&tb.drain(), 1.0);
        match std::fs::write(path, chrome) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    if format == ReportFormat::Json {
        println!("{}", report.to_json());
        return 0;
    }
    print!("{}", render_text(&points, &frontier));
    println!(
        "  worst point: {:.3} % top-1 degradation, ecc {} corrected / {} uncorrectable",
        report.quality_degradation_pct, report.ecc_corrected, report.ecc_uncorrected
    );
    0
}

/// The DRAM request stream a compiled screening program would issue: the
/// `Ldr`/`Str` addresses of `lower_screening` on a paper-default task,
/// offered at a steady pace. This is the traffic shape the fuzzer cannot
/// invent on its own — whatever the compiler actually emits.
fn lowered_requests(cfg: &DramConfig, cap: usize) -> Vec<FuzzRequest> {
    let task = TaskDescriptor::paper_default(4096, 512, 2);
    let layout = MemoryLayout::for_task(&task);
    let program = lower_screening(&task, &layout, 256).expect("paper-default task compiles");
    let space = cfg.organization.channel_bytes();
    let mut reqs = Vec::with_capacity(cap);
    let mut at = 0u64;
    for inst in program.iter() {
        let (addr, write) = match inst {
            Instruction::Ldr { addr, .. } => (*addr, false),
            Instruction::Str { addr, .. } => (*addr, true),
            _ => continue,
        };
        // Fold into the single-rank channel and burst-align, mirroring the
        // fuzzer's own generators.
        reqs.push(FuzzRequest { at, addr: (addr % space) & !63, write });
        at += 2;
        if reqs.len() >= cap {
            break;
        }
    }
    reqs
}

fn cmd_fuzz_dram(args: &[String]) -> i32 {
    let seeds = match flag_value(args, "--seeds").map(|r| parse_count("--seeds", r)).unwrap_or(Ok(32)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let len = match flag_value(args, "--len").map(|r| parse_count("--len", r)).unwrap_or(Ok(96)) {
        Ok(n) => n as usize,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let bug = match flag_value(args, "--inject-bug") {
        Some(raw) => match InjectedBug::parse(raw) {
            Some(b) => Some(b),
            None => {
                let names: Vec<&str> = InjectedBug::ALL.iter().map(|b| b.name()).collect();
                eprintln!("unknown --inject-bug '{raw}'; try: {}", names.join(" "));
                return 2;
            }
        },
        None => None,
    };
    let (patterns, run_lowered) = match flag_value(args, "--pattern") {
        None => (PatternKind::ALL.to_vec(), true),
        Some("lowered") => (Vec::new(), true),
        Some(raw) => match PatternKind::parse(raw) {
            Some(p) => (vec![p], false),
            None => {
                let names: Vec<&str> = PatternKind::ALL.iter().map(|p| p.name()).collect();
                eprintln!("unknown --pattern '{raw}'; try: {} lowered", names.join(" "));
                return 2;
            }
        },
    };
    let repro_out = flag_value(args, "--repro-out");
    let memory = match flag_value(args, "--memory")
        .map(parse_memory)
        .unwrap_or(Ok(MemTech::Ddr4_2666))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // --check-protocol is accepted for symmetry with `simulate` (and so CI
    // can pass one flag set to both); the fuzz harness always runs with
    // the checker and golden cross-validation attached.

    let reference = memory.preset().single_rank_config();
    let mut cfg = reference;
    if let Some(b) = bug {
        cfg.timing = b.apply(cfg.timing);
    }
    eprintln!("fuzzing the {} timing domain", memory.name());

    let mut cases = 0u64;
    let mut failures = 0u64;
    let mut first: Option<(String, u64, Vec<FuzzRequest>)> = None;
    for p in &patterns {
        let mut clean = 0u64;
        for seed in 0..seeds {
            let (reqs, out) = fuzz::run_seed_on(&reference, *p, seed, len, bug);
            cases += 1;
            if out.is_clean() {
                clean += 1;
            } else {
                failures += 1;
                if first.is_none() {
                    first = Some((p.name().to_string(), seed, reqs));
                }
            }
        }
        eprintln!("  {:<22} {clean}/{seeds} clean", p.name());
    }
    if run_lowered {
        let reqs = lowered_requests(&reference, 256);
        let n = reqs.len();
        let out = fuzz::run_case(&reqs, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing);
        cases += 1;
        let clean = u64::from(out.is_clean());
        if clean == 0 {
            failures += 1;
            if first.is_none() {
                first = Some(("lowered".to_string(), 0, reqs));
            }
        }
        eprintln!("  {:<22} {clean}/1 clean  ({n} Ldr/Str requests)", "lowered");
    }

    if let Some((pattern, seed, reqs)) = first {
        let minimal = fuzz::shrink(&reqs, |r| {
            !fuzz::run_case(r, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing).is_clean()
        });
        let repro = Reproducer {
            pattern,
            seed,
            bug: bug.map(|b| b.name().to_string()),
            // Baseline runs omit the field so pre-preset reproducers stay
            // byte-identical.
            memory: (memory != MemTech::Ddr4_2666).then(|| memory.name().to_string()),
            requests: minimal,
        };
        eprintln!("first failure shrunk to {} request(s):", repro.requests.len());
        println!("{}", repro.to_json());
        if let Some(path) = repro_out {
            match std::fs::write(path, repro.to_json()) {
                Ok(()) => eprintln!("reproducer written to {path}"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    return 1;
                }
            }
        }
    }

    match bug {
        None => {
            if failures == 0 {
                eprintln!("fuzz-dram: {cases} case(s), all clean");
                0
            } else {
                eprintln!("fuzz-dram: {failures}/{cases} case(s) FAILED");
                1
            }
        }
        // Sensitivity mode: the harness passes only by catching the
        // deliberately planted bug.
        Some(b) => {
            if failures > 0 {
                eprintln!(
                    "fuzz-dram: injected bug '{}' caught in {failures}/{cases} case(s)",
                    b.name()
                );
                0
            } else {
                eprintln!("fuzz-dram: injected bug '{}' NOT caught", b.name());
                1
            }
        }
    }
}

fn cmd_profile(args: &[String]) -> i32 {
    let workload = match parse_workload(flag_value(args, "--shape").unwrap_or("s1m")) {
        Some(w) => w,
        None => {
            eprintln!("unknown shape; try: lstm transformer gnmt xmlcnn s1m s10m s100m");
            return 2;
        }
    };
    let scheme = match parse_scheme(flag_value(args, "--scheme").unwrap_or("enmc")) {
        Some(Scheme::CpuFull | Scheme::CpuScreened) => {
            eprintln!(
                "profile needs a simulated scheme (nda, chameleon, tensordimm, enmc); \
                 the analytic CPU model has no cycle-level costs to attribute"
            );
            return 2;
        }
        Some(s) => s,
        None => {
            eprintln!("unknown scheme; try: nda chameleon tensordimm enmc");
            return 2;
        }
    };
    let batch = match flag_value(args, "--batch").map(parse_batch).unwrap_or(Ok(1)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let frac = match flag_value(args, "--candidates")
        .map(parse_candidate_fraction)
        .unwrap_or(Ok(0.05))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let format = match flag_value(args, "--report")
        .map(parse_report_format)
        .unwrap_or(Ok(ReportFormat::Text))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let threads = match flag_value(args, "--threads") {
        Some(raw) => match parse_threads(raw) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        None => enmc::par::env_threads().unwrap_or(1),
    };
    let trace_out = flag_value(args, "--trace-out");
    let self_profile = args.iter().any(|a| a == "--self-profile");
    let memory = match flag_value(args, "--memory")
        .map(parse_memory)
        .unwrap_or(Ok(MemTech::Ddr4_2666))
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let mut prof = SelfProfiler::new();
    prof.begin("profile");
    let job = ClassificationJob {
        categories: workload.categories,
        hidden: workload.hidden,
        reduced: (workload.hidden / 4).max(1),
        batch,
        candidates: ((workload.categories as f64) * frac).round() as usize,
    };
    let sys = SystemModel::table3().with_memory(memory);
    eprintln!(
        "profiling {} {} batch {batch} on {} on {threads} worker(s)",
        workload.abbr,
        scheme_label(scheme),
        memory.name()
    );
    prof.begin("simulate");
    let run = sys.run_sharded(&job, scheme, &SimConfig::with_threads(threads));
    prof.end("simulate");
    prof.begin("attribute");
    let mut report = report_from_sharded("profile", workload.abbr, &job, &sys, &run);
    stamp_memory(&mut report, memory);
    let attr = attribute_run(&sys, &run).expect("simulated schemes always attribute");
    prof.end("attribute");
    if let Some(path) = trace_out {
        // A representative-rank traced rerun carries the counter tracks
        // (queue depth, open rows, busy lanes) the sharded run cannot.
        prof.begin("trace");
        let mut tb = TraceBuffer::unbounded();
        sys.run_traced(&job, scheme, Some(&mut tb));
        let ns_per_cycle = sys.memory().ns_per_cycle();
        let chrome = export_chrome(&tb.drain(), ns_per_cycle);
        prof.end("trace");
        match std::fs::write(path, chrome) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    prof.end("profile");

    if format == ReportFormat::Json {
        println!("{}", report.to_json());
    } else {
        // Stdout carries only deterministic content (the tree and its
        // exact totals), so CI can diff it across --threads settings;
        // host-side context goes to stderr.
        println!(
            "profile: {} {} batch {batch}, {} rank shard(s)",
            workload.abbr,
            scheme_label(scheme),
            run.shards
        );
        print!("{}", attr.render());
        println!("total: {} cycles, {:.3} nJ", attr.total_cycles(), attr.energy_nj());
    }
    if self_profile {
        eprint!("{}", prof.render());
    }
    0
}

fn cmd_bench_diff(args: &[String]) -> i32 {
    let tolerance = match flag_value(args, "--wall-tolerance")
        .map(parse_wall_tolerance)
        .unwrap_or(Ok(0.2))
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--wall-tolerance" {
            i += 2;
            continue;
        }
        if args[i].starts_with("--") {
            eprintln!("unknown bench-diff flag '{}'", args[i]);
            return 2;
        }
        paths.push(args[i].as_str());
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: enmc bench-diff OLD.json NEW.json [--wall-tolerance F]");
        return 2;
    }
    let load = |path: &str| -> Result<BenchRecord, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchRecord::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(paths[0]), load(paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let diff = match enmc::perf::bench::diff(&old, &new, tolerance) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    print!("{}", diff.render());
    if diff.failed() {
        eprint!("{}", diff.failure_summary());
        return 1;
    }
    0
}

fn cmd_asm(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: enmc asm <file.s>");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    match Program::parse(&text) {
        Ok(program) => {
            for inst in program.iter() {
                let frame = inst.encode();
                let data =
                    frame.data.map(|d| format!(" DQ={d:#018x}")).unwrap_or_default();
                println!("{:#06x}{data}  ; {}", frame.command, enmc::isa::asm::disassemble(inst));
            }
            println!("; {} instructions, {} wire bytes", program.len(), program.wire_bytes());
            0
        }
        Err(e) => {
            eprintln!("assembly error: {e}");
            1
        }
    }
}

fn cmd_workloads() -> i32 {
    for id in WorkloadId::table2().iter().chain(WorkloadId::scaling().iter()) {
        let w = id.workload();
        println!(
            "{:<18} l={:<10} d={:<5} classifier {:.2} GiB",
            w.abbr,
            w.categories,
            w.hidden,
            w.classifier_bytes() as f64 / (1u64 << 30) as f64
        );
    }
    0
}

fn cmd_list_memory() -> i32 {
    println!(
        "{:<12} {:>7} {:>8} {:>6} {:>8} {:>9} {:>10} {:>10} {:>9}",
        "preset", "tCK ps", "IO MHz", "banks", "tRC ns", "act nJ", "bg W/rk", "ber x", "weak x"
    );
    for tech in MemTech::ALL {
        let p = tech.preset();
        println!(
            "{:<12} {:>7} {:>8} {:>4}x{:<3} {:>8.1} {:>9.2} {:>10.2} {:>10.2} {:>9.2}",
            tech.name(),
            p.timing.tck_ps,
            p.io_mhz(),
            p.bank_groups,
            p.banks_per_group,
            p.timing.cycles_to_ns(p.timing.trc),
            p.energy.act_nj,
            p.energy.background_w,
            p.error.ber_scale,
            p.error.weak_column_scale,
        );
    }
    println!();
    println!("pass a preset to --memory on simulate, serve-sim, fleet-sim, fault-sweep,");
    println!("profile, fuzz-dram, or tune (tune accepts a comma list as a design axis);");
    println!("ddr4-2666 is the default and reproduces the paper's Table 3 DDR4 timing.");
    0
}
