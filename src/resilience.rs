//! Root glue for `enmc fault-sweep`: builds a paper-shape pipeline, runs
//! the fault/resilience sweep from `enmc-fault`, and renders the
//! quality-vs-refresh-energy Pareto table plus a structured [`RunReport`].
//!
//! The sweep is memory-technology aware: `--memory` swaps the system
//! onto another preset, and the preset's error profile scales the
//! injected fault model (BER × `ber_scale`, retention base, weak-column
//! incidence × `weak_column_scale`) before the sweep runs.
//!
//! Like the bench harness, quality runs on a scaled *evaluation shape*
//! (real matrices must fit in memory) while the energy join simulates the
//! workload's full nominal shape — the refresh schedule is only
//! observable on runs long enough to issue REF commands.
//!
//! Everything here is worker-count invariant: the sweep shards over a
//! fixed shard count, the report records no host timing, and the fault
//! maps are stateless hashes — so `--threads 4` output is byte-identical
//! to `--threads 1` (CI diffs exactly that).

use crate::cli::FaultShape;
use crate::pipeline::{Pipeline, PipelineConfig};
use enmc_arch::system::ClassificationJob;
use enmc_fault::{
    pareto_frontier, run_resilience_sweep_with_cost, FaultModel, FaultSweepSpec, ParetoRow,
    SweepError, SweepPoint,
};
use enmc_surrogate::{CostBackend, CostModel};
use enmc_mem::MemTech;
use enmc_model::workloads::WorkloadId;
use enmc_obs::report::RunReport;
use enmc_obs::{MetricsRegistry, TraceBuffer};

/// The Table 2 workload behind a fault-sweep shape.
fn shape_workload(shape: FaultShape) -> WorkloadId {
    match shape {
        FaultShape::LstmWikitext2 => WorkloadId::LstmW33K,
        FaultShape::TransformerWikitext103 => WorkloadId::TransformerW268K,
        FaultShape::GnmtWmt16 => WorkloadId::GnmtE32K,
        FaultShape::XmlcnnAmazon670k => WorkloadId::Xmlcnn670K,
    }
}

/// Evaluation-shape caps and the paper-implied exact-candidate fraction
/// (mirrors the bench harness's `eval_shape` / `candidate_fraction`).
fn shape_geometry(shape: FaultShape) -> (usize, usize, f64) {
    match shape {
        FaultShape::LstmWikitext2 => (4000, 256, 0.144),
        FaultShape::TransformerWikitext103 => (5500, 224, 0.128),
        FaultShape::GnmtWmt16 => (4500, 240, 0.054),
        FaultShape::XmlcnnAmazon670k => (6000, 192, 0.020),
    }
}

/// Pipeline configuration for one shape's algorithm-level evaluation.
pub fn shape_config(shape: FaultShape, seed: u64) -> PipelineConfig {
    let (l, d, frac) = shape_geometry(shape);
    let w = shape_workload(shape).workload();
    let l = w.categories.min(l);
    let d = w.hidden.min(d);
    PipelineConfig {
        categories: l,
        hidden: d,
        candidates: (((l as f64) * frac).round() as usize).max(1),
        train_queries: 128,
        seed,
        ..Default::default()
    }
}

/// The full nominal hardware job the energy join simulates. `batch`
/// stretches the run so every rank issues several refresh windows.
pub fn shape_job(shape: FaultShape, batch: usize) -> ClassificationJob {
    let (_, _, frac) = shape_geometry(shape);
    let w = shape_workload(shape).workload();
    ClassificationJob {
        categories: w.categories,
        hidden: w.hidden,
        reduced: (w.hidden / 4).max(1),
        batch,
        candidates: (((w.categories as f64) * frac).round() as usize).max(1),
    }
}

/// Default candidate tiers for the per-tier masking breakdown: the
/// headline K, then half and a quarter of it (the serving degrade ladder
/// shape).
pub fn default_fault_tiers(k: usize) -> Vec<usize> {
    let mut tiers = vec![k.max(1), (k / 2).max(1), (k / 4).max(1)];
    tiers.dedup();
    tiers
}

/// Batch size of the energy-join job: long enough that every rank's run
/// spans several tREFI windows, so relaxing the refresh schedule has an
/// observable energy effect.
const ENERGY_JOIN_BATCH: usize = 8;

/// Everything `enmc fault-sweep` needs parsed and validated.
#[derive(Debug, Clone)]
pub struct FaultSweepArgs {
    /// Which paper shape to evaluate.
    pub shape: FaultShape,
    /// Uniform bit-error rate of the channel.
    pub ber: f64,
    /// Refresh-interval multipliers to sweep.
    pub multipliers: Vec<f64>,
    /// Fraction of tRCD-marginal bit columns.
    pub weak_columns: f64,
    /// Protect both weight surfaces with SEC-DED (72,64).
    pub ecc: bool,
    /// Queries evaluated per sweep point.
    pub queries: usize,
    /// Seed for the fault maps and the query sample.
    pub seed: u64,
    /// Worker threads (result is bit-identical for any count).
    pub workers: usize,
    /// Cost backend answering the per-point energy join.
    pub backend: CostBackend,
    /// Memory technology preset: sets the timing/energy model of the
    /// energy join and scales the injected fault model by the preset's
    /// error profile.
    pub memory: MemTech,
    /// Surrogate coefficient file to load instead of fitting fresh
    /// (ignored on the cycle-accurate backend).
    pub coeffs_in: Option<String>,
    /// Where to write the surrogate's fitted coefficients (ignored on
    /// the cycle-accurate backend).
    pub coeffs_out: Option<String>,
}

/// Runs the sweep end to end: pipeline build, injection, quality, energy
/// join, Pareto frontier, and the structured report.
///
/// # Errors
///
/// Returns a description when the pipeline cannot be built or injection
/// fails.
pub fn run_fault_sweep(
    args: &FaultSweepArgs,
    trace: Option<&mut TraceBuffer>,
) -> Result<(Vec<SweepPoint>, Vec<ParetoRow>, RunReport), String> {
    let pipeline = Pipeline::build(&shape_config(args.shape, args.seed))
        .map_err(|e| format!("cannot build {} pipeline: {e}", args.shape.name()))?;
    let job = shape_job(args.shape, ENERGY_JOIN_BATCH);
    let system = pipeline.system().clone().with_memory(args.memory);
    let profile = system.memory().error;
    let model = FaultModel::nominal(args.seed)
        .with_ber((args.ber * profile.ber_scale).min(1.0))
        .with_retention_base(profile.retention_base)
        .with_weak_columns((args.weak_columns * profile.weak_column_scale).min(1.0));
    let tiers = default_fault_tiers(pipeline.config().candidates);
    let spec = FaultSweepSpec {
        model,
        multipliers: args.multipliers.clone(),
        ecc: args.ecc,
        queries: args.queries,
        query_seed: args.seed ^ 0xfa17,
        tiers: tiers.clone(),
    };
    let mut registry = MetricsRegistry::new();
    let mut cost = CostModel::new(args.backend, args.seed);
    if let Some(path) = &args.coeffs_in {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read --coeffs {path}: {e}"))?;
        cost.load_coeffs(&text).map_err(|e| format!("cannot load --coeffs {path}: {e}"))?;
    }
    let points = run_resilience_sweep_with_cost(
        pipeline.synth(),
        pipeline.classifier(),
        &system,
        &job,
        &spec,
        args.workers,
        Some(&mut registry),
        trace,
        &mut cost,
    )
    .map_err(|e| match e {
        SweepError::Tensor(t) => format!("fault injection failed: {t}"),
        SweepError::Surrogate(v) => format!("surrogate audit failed: {v}"),
    })?;
    if let Some(path) = &args.coeffs_out {
        std::fs::write(path, cost.coeffs_to_json())
            .map_err(|e| format!("cannot write --coeffs-out {path}: {e}"))?;
    }
    let frontier = pareto_frontier(&points);

    let mut report = RunReport::new("fault-sweep", args.shape.name(), "enmc");
    report.batch = job.batch as u64;
    report.candidates = job.candidates as u64;
    report.ber = args.ber;
    report.memory_tech = args.memory.name().to_string();
    report.ber_scale = profile.ber_scale;
    report.retention_base = profile.retention_base;
    report.weak_column_scale = profile.weak_column_scale;
    report.refresh_multiplier = args
        .multipliers
        .iter()
        .copied()
        .fold(1.0f64, f64::max);
    report.ecc_corrected = points.iter().map(SweepPoint::ecc_corrected).sum();
    report.ecc_uncorrected = points.iter().map(SweepPoint::ecc_uncorrected).sum();
    report.quality_degradation_pct = points
        .iter()
        .map(SweepPoint::quality_degradation_pct)
        .fold(0.0f64, f64::max);
    let stats = cost.stats();
    report.cost_backend = cost.backend().name().to_string();
    report.fit_anchors = stats.fit_anchors;
    report.audit_points = stats.audited;
    report.audit_max_rel_err = stats.max_rel_err;
    report.metrics = registry.snapshot();
    let cfg = pipeline.config();
    report.notes.push(format!(
        "eval shape {}x{}, tiers {:?}, {} queries, seed {}",
        cfg.categories, cfg.hidden, tiers, args.queries, args.seed
    ));
    report.notes.push(format!(
        "ecc {}; weak-column fraction {}; scalar fields summarize the worst sweep point",
        if args.ecc { "on" } else { "off" },
        args.weak_columns
    ));
    // No host timing in the report: the sweep promises byte-identical
    // output at any worker count.
    Ok((points, frontier, report))
}

/// Renders the sweep as the fixed-width tables `enmc fault-sweep` prints.
pub fn render_text(points: &[SweepPoint], frontier: &[ParetoRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "  mult   refresh uJ   total uJ    top1 %   degr %   flips (drop/spike)   rows read/masked   ecc corr/uncorr\n",
    );
    for p in points {
        let t = p.primary();
        out.push_str(&format!(
            "  {:<6} {:>10.2} {:>10.2} {:>9.2} {:>8.3}   {:>6} ({}/{})   {:>8}/{:<8}   {}/{}\n",
            p.refresh_multiplier,
            p.refresh_energy_nj / 1e3,
            p.total_energy_nj / 1e3,
            100.0 * t.quality.top1_agreement,
            p.quality_degradation_pct(),
            t.fault_top1_flips,
            t.flips_candidate_drop,
            t.flips_logit_spike,
            t.corrupted_rows_read,
            t.corrupted_rows_masked,
            p.ecc_corrected(),
            p.ecc_uncorrected(),
        ));
    }
    out.push_str("  pareto frontier (running-min quality, nonincreasing by construction):\n");
    for row in frontier {
        out.push_str(&format!(
            "    m={:<6} refresh {:>10.2} uJ   top1 {:>6.2} %\n",
            row.refresh_multiplier,
            row.refresh_energy_nj / 1e3,
            100.0 * row.top1_agreement,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_configs_are_buildable_and_bounded() {
        for shape in [
            FaultShape::LstmWikitext2,
            FaultShape::TransformerWikitext103,
            FaultShape::GnmtWmt16,
            FaultShape::XmlcnnAmazon670k,
        ] {
            let cfg = shape_config(shape, 7);
            assert!(cfg.categories <= 6000 && cfg.hidden <= 256, "{shape:?}");
            assert!(cfg.candidates >= 1 && cfg.candidates < cfg.categories);
            let job = shape_job(shape, 1);
            assert!(job.categories >= cfg.categories, "{shape:?} job is nominal-shape");
            assert!(job.candidates >= 1);
        }
    }

    #[test]
    fn default_tiers_halve_and_dedup() {
        assert_eq!(default_fault_tiers(576), vec![576, 288, 144]);
        assert_eq!(default_fault_tiers(2), vec![2, 1]);
        assert_eq!(default_fault_tiers(1), vec![1]);
        assert_eq!(default_fault_tiers(0), vec![1]);
    }

    #[test]
    fn nominal_sweep_reports_zero_degradation_and_is_worker_invariant() {
        let args = FaultSweepArgs {
            shape: FaultShape::LstmWikitext2,
            ber: 0.0,
            multipliers: vec![1.0],
            weak_columns: 0.0,
            ecc: false,
            queries: 24,
            seed: 7,
            workers: 1,
            backend: CostBackend::CycleAccurate,
            memory: MemTech::Ddr4_2666,
            coeffs_in: None,
            coeffs_out: None,
        };
        let (points, frontier, report) = run_fault_sweep(&args, None).unwrap();
        assert_eq!(report.quality_degradation_pct, 0.0);
        assert_eq!(report.memory_tech, "ddr4-2666");
        assert_eq!(report.ber_scale, 1.0);
        assert_eq!(report.ecc_corrected, 0);
        assert_eq!(report.cost_backend, "cycle-accurate");
        assert_eq!(report.fit_anchors, 0);
        assert_eq!(points[0].primary().fault_top1_flips, 0);
        assert_eq!(frontier.len(), 1);
        assert!(points[0].refresh_energy_nj > 0.0, "energy join must see refreshes");
        let par = FaultSweepArgs { workers: 4, ..args };
        let (p4, _, r4) = run_fault_sweep(&par, None).unwrap();
        assert_eq!(p4, points, "sweep points diverged across worker counts");
        assert_eq!(r4.to_json(), report.to_json(), "report diverged across worker counts");
    }

    #[test]
    fn surrogate_backend_survives_a_full_audit_and_reports_its_stats() {
        let args = FaultSweepArgs {
            shape: FaultShape::LstmWikitext2,
            ber: 0.0,
            multipliers: vec![1.0, 8.0],
            weak_columns: 0.0,
            ecc: false,
            queries: 24,
            seed: 7,
            workers: 1,
            backend: CostBackend::Surrogate { audit_rate: 1.0 },
            memory: MemTech::Ddr4_2666,
            coeffs_in: None,
            coeffs_out: None,
        };
        let (points, _, report) = run_fault_sweep(&args, None).unwrap();
        assert_eq!(report.cost_backend, "surrogate");
        assert!(report.fit_anchors > 0, "surrogate must have fitted anchors");
        assert_eq!(report.audit_points, 2, "audit rate 1.0 audits every point");
        assert!(
            report.audit_max_rel_err <= enmc_surrogate::DECLARED_BOUND.rel,
            "observed {}",
            report.audit_max_rel_err
        );
        assert!(points[0].refresh_energy_nj > 0.0, "predicted energy join sees refreshes");
        assert!(
            points[1].refresh_energy_nj < points[0].refresh_energy_nj,
            "relaxed refresh must cost less refresh energy"
        );
    }

    #[test]
    fn injected_ber_degrades_quality_and_the_frontier_is_monotone() {
        let args = FaultSweepArgs {
            shape: FaultShape::LstmWikitext2,
            ber: 1e-4,
            multipliers: vec![1.0, 16.0, 64.0],
            weak_columns: 0.0,
            ecc: false,
            queries: 24,
            seed: 7,
            workers: 2,
            backend: CostBackend::CycleAccurate,
            memory: MemTech::Ddr4_2666,
            coeffs_in: None,
            coeffs_out: None,
        };
        let (points, frontier, report) = run_fault_sweep(&args, None).unwrap();
        assert!(report.quality_degradation_pct > 0.0, "1e-4 BER without ECC must degrade");
        assert_eq!(report.refresh_multiplier, 64.0);
        assert_eq!(report.schema_version, 10);
        for w in frontier.windows(2) {
            assert!(w[1].top1_agreement <= w[0].top1_agreement, "quality must not increase");
            assert!(
                w[1].refresh_energy_nj <= w[0].refresh_energy_nj,
                "refresh energy must not increase"
            );
        }
        assert!(points.iter().any(|p| p.screener.raw_flips > 0));
    }

    #[test]
    fn lpddr4_preset_scales_the_injected_fault_model() {
        let args = FaultSweepArgs {
            shape: FaultShape::LstmWikitext2,
            ber: 1e-4,
            multipliers: vec![1.0],
            weak_columns: 0.0,
            ecc: false,
            queries: 24,
            seed: 7,
            workers: 1,
            backend: CostBackend::CycleAccurate,
            memory: MemTech::Lpddr4_3200,
            coeffs_in: None,
            coeffs_out: None,
        };
        let (points, _, report) = run_fault_sweep(&args, None).unwrap();
        let profile = MemTech::Lpddr4_3200.preset().error;
        assert_eq!(report.memory_tech, "lpddr4-3200");
        assert_eq!(report.ber, 1e-4, "report.ber stays the requested channel BER");
        assert_eq!(report.ber_scale, profile.ber_scale);
        assert_eq!(report.retention_base, profile.retention_base);
        assert_eq!(report.weak_column_scale, profile.weak_column_scale);
        assert!(
            report.quality_degradation_pct > 0.0,
            "scaled BER on LPDDR4 must still degrade quality"
        );
        // The energy join ran on the LPDDR4 timing/energy model, whose
        // refresh schedule differs from the DDR4 baseline.
        let base = FaultSweepArgs { memory: MemTech::Ddr4_2666, ..args };
        let (bp, _, _) = run_fault_sweep(&base, None).unwrap();
        assert_ne!(
            points[0].refresh_energy_nj, bp[0].refresh_energy_nj,
            "presets must reach the energy join, not just the report"
        );
    }
}
